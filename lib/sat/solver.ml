(* CDCL with two-literal watching, VSIDS + phase saving, 1UIP learning with
   one-step self-subsumption minimization, Luby restarts and learnt-clause
   deletion.  Structure follows MiniSAT 2.2.

   Clause storage is a flat integer arena (MiniSAT/CaDiCaL style, see
   {!Arena}): every clause lives contiguously in one growable [int array]
   and is referred to by its offset (a "cref", a plain [int]).  Watch
   lists are flat [(blocker, cref)] int pairs, so the propagation inner
   loop allocates nothing and walks cache-contiguous memory.  [reduce_db]
   compacts the arena in place — crefs in watches, reasons and the clause
   lists are relocated through a binary-searched offset map — instead of
   leaking tombstones behind watch lists.

   On top of the plain CDCL loop sits an inprocessing engine ({!Simp}):
   each [solve] call starts with a root simplification session
   (subsumption, self-subsuming resolution, bounded variable elimination)
   over clauses added since the previous one, and every few restarts a
   vivification round shrinks high-activity clauses under a propagation
   budget.  Variable elimination obeys a frozen-variable protocol
   ([freeze_var]) so incremental callers can safely re-mention frozen
   variables, and is disabled entirely while DRUP recording is on. *)

module Tel = Ll_telemetry.Telemetry

(* Solve-level telemetry.  Per-event counters are flushed as deltas at the
   end of each [solve] rather than bumped in the search inner loop, so the
   hot path carries no telemetry branches beyond the LBD observation. *)
let m_solves = Tel.Metric.counter "sat.solves"

let m_conflicts = Tel.Metric.counter "sat.conflicts"

let m_decisions = Tel.Metric.counter "sat.decisions"

let m_propagations = Tel.Metric.counter "sat.propagations"

let m_restarts = Tel.Metric.counter "sat.restarts"

let m_simp_subsumed = Tel.Metric.counter "sat.simp.subsumed"

let m_simp_self_subsumed = Tel.Metric.counter "sat.simp.self_subsumed"

let m_simp_eliminated = Tel.Metric.counter "sat.simp.eliminated_vars"

let m_simp_vivified = Tel.Metric.counter "sat.simp.vivified"

let m_imported = Tel.Metric.counter "sat.imported_clauses"

let g_arena_words = Tel.Metric.gauge "sat.arena_words"

let h_lbd =
  Tel.Metric.histogram
    ~buckets:[| 1.0; 2.0; 3.0; 4.0; 6.0; 8.0; 12.0; 16.0; 24.0; 32.0; 48.0; 64.0 |]
    "sat.lbd"

let h_conflicts_per_solve =
  Tel.Metric.histogram
    ~buckets:[| 0.0; 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1e3; 3e3; 1e4; 3e4; 1e5 |]
    "sat.conflicts_per_solve"

type result = Sat | Unsat

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_literals : int;
  deleted_clauses : int;
  arena_gcs : int;
  arena_words : int;
  simp_subsumed : int;
  simp_self_subsumed : int;
  simp_eliminated_vars : int;
  simp_vivified : int;
}

exception Conflict_limit

type proof_event = P_add of Lit.t array | P_delete of Lit.t array

let hdr_size_shift = Arena.hdr_size_shift

let no_cref = Arena.no_cref

type t = {
  ar : Arena.t;
  clauses : int Vec.t;  (* crefs of problem clauses *)
  learnts : int Vec.t;  (* crefs of retained learnt clauses *)
  mutable watches : int Vec.t array;
      (* watches.(l): flat (blocker, cref) pairs of clauses watching ¬l *)
  mutable assigns : int array;  (* per var: -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array;  (* cref, or [no_cref] when none *)
  mutable activity : float array;
  mutable polarity : bool array;  (* saved phase *)
  mutable seen : bool array;  (* scratch for analyze *)
  mutable level_stamp : int array;  (* scratch for LBD counting *)
  mutable stamp : int;
  mutable order : Heap.t;
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable nvars : int;
  mutable ok : bool;
  prng : Ll_util.Prng.t;
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable n_learnt_literals : int;
  mutable n_deleted : int;
  mutable n_gcs : int;
  mutable proof_enabled : bool;
  proof_log : proof_event Vec.t;
  (* inprocessing *)
  simp_enabled : bool;
  simp : Simp.t;
  mutable frozen : bool array;
  mutable eliminated : bool array;
  mutable ext_model : int array;  (* extension values for eliminated vars *)
  mutable n_eliminated : int;
  mutable clause_cursor : int;  (* clauses-vector prefix seen by the last session *)
  mutable last_trail_simp : int;  (* root trail size at the last session *)
  mutable last_conflicts_simp : int;  (* n_conflicts at the last session *)
  mutable last_viv_restart : int;
}

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999
let random_decision_freq = 0.02
let restart_first = 100

let create ?(seed = 0) ?(simp = true) () =
  let s =
    {
      ar = Arena.create ();
      clauses = Vec.create ~dummy:no_cref;
      learnts = Vec.create ~dummy:no_cref;
      watches = Array.init 128 (fun _ -> Vec.create ~dummy:0);
      assigns = Array.make 64 (-1);
      level = Array.make 64 0;
      reason = Array.make 64 no_cref;
      activity = Array.make 64 0.0;
      polarity = Array.make 64 false;
      seen = Array.make 64 false;
      level_stamp = Array.make 65 0;
      stamp = 0;
      order = Heap.create ~score:(fun _ -> 0.0);
      trail = Vec.create ~dummy:0;
      trail_lim = Vec.create ~dummy:0;
      qhead = 0;
      var_inc = 1.0;
      cla_inc = 1.0;
      nvars = 0;
      ok = true;
      prng = Ll_util.Prng.create seed;
      n_conflicts = 0;
      n_decisions = 0;
      n_propagations = 0;
      n_restarts = 0;
      n_learnt_literals = 0;
      n_deleted = 0;
      n_gcs = 0;
      proof_enabled = false;
      proof_log = Vec.create ~dummy:(P_add [||]);
      simp_enabled = simp;
      simp = Simp.create ();
      frozen = Array.make 64 false;
      eliminated = Array.make 64 false;
      ext_model = Array.make 64 (-1);
      n_eliminated = 0;
      clause_cursor = 0;
      last_trail_simp = 0;
      last_conflicts_simp = 0;
      last_viv_restart = 0;
    }
  in
  (* The heap scores through the record so activity-array reallocation in
     [grow_arrays] stays visible. *)
  s.order <- Heap.create ~score:(fun v -> s.activity.(v));
  s

let num_vars s = s.nvars

let num_clauses s = Vec.length s.clauses

let num_learnts s = Vec.length s.learnts

(* --- Arena shorthands --- *)

let clause_size s c = Arena.size s.ar c

let clause_learnt s c = Arena.learnt s.ar c

let clause_marked s c = Arena.marked s.ar c

let mark_clause s c = Arena.mark s.ar c

let clause_lbd s c = Arena.lbd s.ar c

let clause_act s c = Arena.act s.ar c

let set_clause_act s c f = Arena.set_act s.ar c f

let clause_lit s c k = Arena.lit s.ar c k

let clause_lits s c = Arena.lits s.ar c

let grow_arrays s needed =
  let old = Array.length s.assigns in
  if needed > old then begin
    let n = max needed (2 * old) in
    let grown (type a) (a : a array) (fill : a) =
      let fresh = Array.make n fill in
      Array.blit a 0 fresh 0 old;
      fresh
    in
    s.assigns <- grown s.assigns (-1);
    s.level <- grown s.level 0;
    s.reason <- grown s.reason no_cref;
    s.activity <- grown s.activity 0.0;
    s.polarity <- grown s.polarity false;
    s.seen <- grown s.seen false;
    s.frozen <- grown s.frozen false;
    s.eliminated <- grown s.eliminated false;
    s.ext_model <- grown s.ext_model (-1);
    (* one extra slot: decision levels range over 0..nvars inclusive *)
    let fresh = Array.make (n + 1) 0 in
    Array.blit s.level_stamp 0 fresh 0 (Array.length s.level_stamp);
    s.level_stamp <- fresh
  end;
  let old_w = Array.length s.watches in
  if 2 * needed > old_w then begin
    let n = max (2 * needed) (2 * old_w) in
    s.watches <-
      Array.init n (fun i -> if i < old_w then s.watches.(i) else Vec.create ~dummy:0)
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  grow_arrays s s.nvars;
  Heap.insert s.order v;
  v

(* Value of a literal: -1 unassigned, 0 false, 1 true. *)
let lit_value s l =
  let v = s.assigns.(Lit.var l) in
  if v < 0 then -1 else v lxor (l land 1)

let decision_level s = Vec.length s.trail_lim

let log_proof s event = if s.proof_enabled then Vec.push s.proof_log event

let enqueue s l reason =
  s.assigns.(Lit.var l) <- 1 lxor (l land 1);
  s.level.(Lit.var l) <- decision_level s;
  s.reason.(Lit.var l) <- reason;
  Vec.push s.trail l

(* --- Frozen-variable protocol --- *)

let check_var s name v = if v < 0 || v >= s.nvars then invalid_arg name

let freeze_var s v =
  check_var s "Solver.freeze_var: unknown variable" v;
  s.frozen.(v) <- true

let unfreeze_var s v =
  check_var s "Solver.unfreeze_var: unknown variable" v;
  s.frozen.(v) <- false

let is_frozen s v =
  check_var s "Solver.is_frozen: unknown variable" v;
  s.frozen.(v)

let is_eliminated s v =
  check_var s "Solver.is_eliminated: unknown variable" v;
  s.eliminated.(v)

(* --- Activity --- *)

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Heap.update s.order v

let decay_var_activity s = s.var_inc <- s.var_inc *. var_decay

let bump_clause s c =
  let a = clause_act s c +. s.cla_inc in
  set_clause_act s c a;
  if a > 1e20 then begin
    Vec.iter (fun c -> set_clause_act s c (clause_act s c *. 1e-20)) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let decay_clause_activity s = s.cla_inc <- s.cla_inc *. clause_decay

(* --- Clause attachment --- *)

let watch s l ~blocker cref =
  let ws = s.watches.(l) in
  Vec.push ws blocker;
  Vec.push ws cref

let attach_clause s c =
  assert (clause_size s c >= 2);
  let l0 = clause_lit s c 0 and l1 = clause_lit s c 1 in
  watch s (Lit.negate l0) ~blocker:l1 c;
  watch s (Lit.negate l1) ~blocker:l0 c

let remove_watch s l c =
  let ws = s.watches.(l) in
  let n = Vec.length ws in
  let i = ref 0 in
  while !i < n && Vec.unsafe_get ws (!i + 1) <> c do
    i := !i + 2
  done;
  if !i < n then begin
    Vec.unsafe_set ws !i (Vec.unsafe_get ws (n - 2));
    Vec.unsafe_set ws (!i + 1) (Vec.unsafe_get ws (n - 1));
    Vec.shrink ws (n - 2)
  end

let detach_clause s c =
  let l0 = clause_lit s c 0 and l1 = clause_lit s c 1 in
  remove_watch s (Lit.negate l0) c;
  remove_watch s (Lit.negate l1) c

let clear_reasons_of s c =
  let n = clause_size s c in
  for k = 0 to n - 1 do
    let v = Lit.var (clause_lit s c k) in
    if s.reason.(v) = c then s.reason.(v) <- no_cref
  done

(* --- Propagation --- *)

(* The hot loop: walks flat (blocker, cref) pairs and clause literals that
   live in the contiguous arena.  No allocation on any path except a watch
   move (a push of two ints, amortized O(1) with no boxing). *)
let propagate s =
  let conflict = ref no_cref in
  while !conflict < 0 && s.qhead < Vec.length s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    (* p just became true; clauses in watches.(p) watch ¬p, now false. *)
    let ws = s.watches.(p) in
    let n = Vec.length ws in
    let assigns = s.assigns in
    let arena = s.ar.Arena.a in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let blocker = Vec.unsafe_get ws !i in
      let cref = Vec.unsafe_get ws (!i + 1) in
      i := !i + 2;
      (* Blocking-literal fast path: if the cached literal is already
         true the clause is satisfied — keep the watcher, skip the clause
         dereference entirely. *)
      let bv = Array.unsafe_get assigns (blocker lsr 1) in
      if bv >= 0 && bv lxor (blocker land 1) = 1 then begin
        Vec.unsafe_set ws !j blocker;
        Vec.unsafe_set ws (!j + 1) cref;
        j := !j + 2
      end
      else begin
        let base = cref + 2 in
        let false_lit = p lxor 1 in
        if Array.unsafe_get arena base = false_lit then begin
          Array.unsafe_set arena base (Array.unsafe_get arena (base + 1));
          Array.unsafe_set arena (base + 1) false_lit
        end;
        let first = Array.unsafe_get arena base in
        let fv = Array.unsafe_get assigns (first lsr 1) in
        let fval = if fv < 0 then -1 else fv lxor (first land 1) in
        if fval = 1 then begin
          Vec.unsafe_set ws !j first;
          Vec.unsafe_set ws (!j + 1) cref;
          j := !j + 2
        end
        else begin
          let size = Array.unsafe_get arena cref lsr hdr_size_shift in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < size do
            let q = Array.unsafe_get arena (base + !k) in
            let qv = Array.unsafe_get assigns (q lsr 1) in
            if qv < 0 || qv lxor (q land 1) = 1 then begin
              Array.unsafe_set arena (base + 1) q;
              Array.unsafe_set arena (base + !k) false_lit;
              watch s (Lit.negate q) ~blocker:first cref;
              found := true
            end
            else incr k
          done;
          if not !found then begin
            (* Unit or conflicting: keep watching ¬p. *)
            Vec.unsafe_set ws !j first;
            Vec.unsafe_set ws (!j + 1) cref;
            j := !j + 2;
            if fval = 0 then begin
              conflict := cref;
              s.qhead <- Vec.length s.trail;
              while !i < n do
                Vec.unsafe_set ws !j (Vec.unsafe_get ws !i);
                incr j;
                incr i
              done
            end
            else enqueue s first cref
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

(* --- Backtracking --- *)

let cancel_until s target =
  if decision_level s > target then begin
    let bound = Vec.get s.trail_lim target in
    for i = Vec.length s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Lit.var l in
      s.polarity.(v) <- s.assigns.(v) = 1;
      s.assigns.(v) <- -1;
      s.reason.(v) <- no_cref;
      Heap.insert s.order v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim target;
    s.qhead <- Vec.length s.trail
  end

let new_decision_level s = Vec.push s.trail_lim (Vec.length s.trail)

(* --- Conflict analysis (first UIP) --- *)

(* One-step redundancy: a learnt literal is droppable when every other
   literal of its reason is already in the learnt clause (seen) or fixed at
   level 0. *)
let lit_redundant s l =
  let r = s.reason.(Lit.var l) in
  r >= 0
  &&
  let n = clause_size s r in
  let rec all k =
    k >= n
    ||
    let q = clause_lit s r k in
    (Lit.var q = Lit.var l || s.seen.(Lit.var q) || s.level.(Lit.var q) = 0) && all (k + 1)
  in
  all 0

let analyze s confl =
  let learnt = Vec.create ~dummy:0 in
  Vec.push learnt 0 (* placeholder for the asserting literal *);
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.length s.trail - 1) in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    if clause_learnt s !c then bump_clause s !c;
    let n = clause_size s !c in
    for k = 0 to n - 1 do
      let q = clause_lit s !c k in
      (* Skip the literal this reason clause propagated. *)
      if !p >= 0 && Lit.var q = Lit.var !p then ()
      else begin
        let v = Lit.var q in
        if (not s.seen.(v)) && s.level.(v) > 0 then begin
          s.seen.(v) <- true;
          bump_var s v;
          if s.level.(v) >= decision_level s then incr counter else Vec.push learnt q
        end
      end
    done;
    let rec next_marked i =
      let l = Vec.get s.trail i in
      if s.seen.(Lit.var l) then (l, i) else next_marked (i - 1)
    in
    let l, i = next_marked !index in
    index := i - 1;
    p := l;
    s.seen.(Lit.var l) <- false;
    decr counter;
    if !counter > 0 then c := s.reason.(Lit.var l) else continue := false
  done;
  Vec.set learnt 0 (Lit.negate !p);
  s.seen.(Lit.var !p) <- true;
  (* keep the UIP marked during minimization *)
  let lits = Array.init (Vec.length learnt) (Vec.get learnt) in
  let keep = Array.mapi (fun i l -> i = 0 || not (lit_redundant s l)) lits in
  let minimized =
    Array.to_list lits |> List.filteri (fun i _ -> keep.(i)) |> Array.of_list
  in
  Array.iter (fun l -> s.seen.(Lit.var l) <- false) lits;
  s.seen.(Lit.var !p) <- false;
  let n = Array.length minimized in
  let bt_level =
    if n = 1 then 0
    else begin
      let max_i = ref 1 in
      for i = 2 to n - 1 do
        if s.level.(Lit.var minimized.(i)) > s.level.(Lit.var minimized.(!max_i)) then
          max_i := i
      done;
      let tmp = minimized.(1) in
      minimized.(1) <- minimized.(!max_i);
      minimized.(!max_i) <- tmp;
      s.level.(Lit.var minimized.(1))
    end
  in
  (* Distinct decision levels among the learnt literals, counted with a
     stamp array instead of a set (no allocation). *)
  s.stamp <- s.stamp + 1;
  let stamp = s.stamp in
  let lbd = ref 0 in
  for i = 0 to n - 1 do
    let lv = s.level.(Lit.var minimized.(i)) in
    if s.level_stamp.(lv) <> stamp then begin
      s.level_stamp.(lv) <- stamp;
      incr lbd
    end
  done;
  (minimized, bt_level, !lbd)

(* --- Learnt clause database reduction --- *)

let locked s c =
  clause_size s c > 0
  &&
  let l0 = clause_lit s c 0 in
  s.reason.(Lit.var l0) = c && lit_value s l0 = 1

(* In-place arena compaction.  Builds a sorted (old cref -> new cref) map
   while scanning the arena, relocates every cref in watches, reasons and
   the clause lists through binary search, then slides live clause data
   down with overlap-safe blits.  Marked clauses and hole blocks (negative
   words left by in-place strengthening) are dropped. *)
let gc_arena_core s =
  let arena = s.ar.Arena.a in
  let arena_len = s.ar.Arena.len in
  let old_ofs = Vec.create ~dummy:0 in
  let new_ofs = Vec.create ~dummy:0 in
  let src = ref 0 and dst = ref 0 in
  while !src < arena_len do
    let h = arena.(!src) in
    if h < 0 then src := !src - h
    else begin
      let len = (h lsr hdr_size_shift) + 2 in
      if h land 2 = 0 then begin
        Vec.push old_ofs !src;
        Vec.push new_ofs !dst;
        dst := !dst + len
      end;
      src := !src + len
    end
  done;
  let live_words = !dst in
  let reloc cref =
    let lo = ref 0 and hi = ref (Vec.length old_ofs - 1) in
    let res = ref no_cref in
    while !res < 0 do
      let mid = (!lo + !hi) / 2 in
      let v = Vec.get old_ofs mid in
      if v = cref then res := Vec.get new_ofs mid
      else if v < cref then lo := mid + 1
      else hi := mid - 1
    done;
    !res
  in
  (* Watches: drop watchers of marked clauses, relocate the rest. *)
  Array.iter
    (fun ws ->
      let n = Vec.length ws in
      let j = ref 0 in
      let i = ref 0 in
      while !i < n do
        let blocker = Vec.get ws !i in
        let cref = Vec.get ws (!i + 1) in
        i := !i + 2;
        if not (clause_marked s cref) then begin
          Vec.set ws !j blocker;
          Vec.set ws (!j + 1) (reloc cref);
          j := !j + 2
        end
      done;
      Vec.shrink ws !j)
    s.watches;
  (* Reasons of currently assigned variables ([locked] keeps them alive). *)
  for v = 0 to s.nvars - 1 do
    if s.reason.(v) >= 0 then s.reason.(v) <- reloc s.reason.(v)
  done;
  for i = 0 to Vec.length s.clauses - 1 do
    Vec.set s.clauses i (reloc (Vec.get s.clauses i))
  done;
  for i = 0 to Vec.length s.learnts - 1 do
    Vec.set s.learnts i (reloc (Vec.get s.learnts i))
  done;
  (* Physical compaction, in increasing address order (dst <= src). *)
  let src = ref 0 and dst = ref 0 in
  while !src < arena_len do
    let h = arena.(!src) in
    if h < 0 then src := !src - h
    else begin
      let len = (h lsr hdr_size_shift) + 2 in
      if h land 2 = 0 then begin
        if !dst < !src then Array.blit arena !src arena !dst len;
        dst := !dst + len
      end;
      src := !src + len
    end
  done;
  s.ar.Arena.len <- live_words;
  s.ar.Arena.dead <- 0;
  s.n_gcs <- s.n_gcs + 1

let gc_arena s =
  if Tel.enabled () then begin
    Tel.span_begin ~a0:s.ar.Arena.len "sat.gc_arena";
    gc_arena_core s;
    Tel.span_end ~v:s.ar.Arena.len ()
  end
  else gc_arena_core s

let reduce_db_core s =
  (* Ascending quality; the first half gets deleted.  Concrete comparisons
     (bool, then LBD descending, then activity ascending) — equivalent to
     the former polymorphic compare on a (bool, -lbd, activity) tuple but
     without the polymorphic-compare dispatch in this maintenance path. *)
  let cmp a b =
    let bin_a = clause_size s a <= 2 and bin_b = clause_size s b <= 2 in
    if bin_a <> bin_b then (if bin_a then 1 else -1)
    else
      let la = clause_lbd s a and lb = clause_lbd s b in
      if la <> lb then Stdlib.compare lb la
      else Float.compare (clause_act s a) (clause_act s b)
  in
  Vec.sort_in_place cmp s.learnts;
  let limit = Vec.length s.learnts / 2 in
  let any_deleted = ref false in
  for i = 0 to limit - 1 do
    let c = Vec.get s.learnts i in
    if clause_size s c > 2 && not (locked s c) then begin
      mark_clause s c;
      any_deleted := true;
      s.n_deleted <- s.n_deleted + 1;
      log_proof s (P_delete (clause_lits s c))
    end
  done;
  if !any_deleted then begin
    Vec.filter_in_place (fun c -> not (clause_marked s c)) s.learnts;
    gc_arena s
  end

let reduce_db s =
  if Tel.enabled () then begin
    Tel.span_begin ~a0:(Vec.length s.learnts) "sat.reduce_db";
    reduce_db_core s;
    Tel.span_end ~v:(Vec.length s.learnts) ()
  end
  else reduce_db_core s

(* --- Adding clauses (root level) --- *)

(* Returns the cref of the attached clause, or [no_cref] when the clause
   was absorbed (tautological, satisfied, unit, or empty).

   A literal over an eliminated variable re-activates it first
   ([restore_var]): the variable's original clauses are replayed from the
   eliminated-clause stack, so the incremental contract — any existing
   variable may appear in later clauses — survives inprocessing.
   Freezing remains worthwhile: it avoids the restore churn entirely. *)
let rec add_clause_core s lits =
  if not s.ok then no_cref
  else begin
    (* Incremental use: callers add clauses right after a Sat answer, while
       the trail still holds the model.  Return to the root first. *)
    cancel_until s 0;
    let module IS = Set.Make (Int) in
    let tautology = ref false in
    let satisfied = ref false in
    let kept = ref IS.empty in
    Array.iter
      (fun l ->
        if Lit.var l >= s.nvars then invalid_arg "Solver.add_clause: unknown variable";
        if s.eliminated.(Lit.var l) then restore_var s (Lit.var l);
        if IS.mem (Lit.negate l) !kept then tautology := true;
        match lit_value s l with
        | 1 -> satisfied := true
        | 0 -> ()
        | _ -> kept := IS.add l !kept)
      lits;
    if !tautology || !satisfied then no_cref
    else begin
      let lits = Array.of_list (IS.elements !kept) in
      match Array.length lits with
      | 0 ->
          s.ok <- false;
          log_proof s (P_add [||]);
          no_cref
      | 1 ->
          enqueue s lits.(0) no_cref;
          if propagate s >= 0 then begin
            s.ok <- false;
            log_proof s (P_add [||])
          end;
          no_cref
      | _ ->
          let c = Arena.alloc s.ar lits ~learnt:false ~lbd:0 in
          Vec.push s.clauses c;
          attach_clause s c;
          c
    end
  end

and restore_var s v =
  Simp.restore s.simp ~var:v
    ~unelim:(fun u ->
      if s.eliminated.(u) then begin
        s.eliminated.(u) <- false;
        s.n_eliminated <- s.n_eliminated - 1;
        if s.assigns.(u) < 0 then Heap.insert s.order u
      end)
    ~readd:(fun lits -> ignore (add_clause_core s lits))

let add_clause_a s lits = ignore (add_clause_core s lits)

let add_clause s lits = add_clause_a s (Array.of_list lits)

(* Batched root-level addition: the arena words for the whole batch are
   reserved up front, so the clauses land as one contiguous append with at
   most one backing-array growth instead of up to [length css] of them.
   The clauses are then attached in list order through the exact same
   absorption/propagation path as sequential {!add_clause} calls — the
   resulting clause database and trail are identical. *)
let add_clause_batch s css =
  let words = List.fold_left (fun acc c -> acc + Array.length c + 2) 0 css in
  Arena.reserve s.ar words;
  List.iter (fun c -> ignore (add_clause_core s c)) css

(* Clause import from another solver session (cube-and-conquer clause
   sharing): same one-reservation contiguous append as a batch, but the
   count of clauses that actually attached is reported back so the
   importer can account for absorption (root-satisfied, tautological or
   unit clauses leave no arena clause behind). *)
let import_clauses s css =
  let words = List.fold_left (fun acc c -> acc + Array.length c + 2) 0 css in
  Arena.reserve s.ar words;
  let attached =
    List.fold_left
      (fun n c -> if add_clause_core s c <> no_cref then n + 1 else n)
      0 css
  in
  Tel.Metric.add m_imported (List.length css);
  attached

(* --- Simplification host operations --- *)

(* Commit a derived root unit: enqueue and propagate, or record the
   refutation if it contradicts the current root assignment. *)
let root_commit_unit s u =
  match lit_value s u with
  | 1 -> ()
  | 0 ->
      s.ok <- false;
      log_proof s (P_add [||])
  | _ ->
      enqueue s u no_cref;
      if propagate s >= 0 then begin
        s.ok <- false;
        log_proof s (P_add [||])
      end

(* Drop a clause at the root: detach, clear any reason pointers into it,
   mark it dead in the arena (the clause vectors are filtered later). *)
let simp_remove_clause s c =
  log_proof s (P_delete (clause_lits s c));
  if clause_size s c >= 2 then detach_clause s c;
  clear_reasons_of s c;
  mark_clause s c

(* Remove literal [l] from clause [c] in place (subsumption strengthening
   or root-false stripping).  The shrunken clause is RUP, so under DRUP it
   is logged as an addition followed by the deletion of the original. *)
let simp_strengthen_clause s c l =
  detach_clause s c;
  let old = clause_lits s c in
  let n = Array.length old in
  let k = ref 0 in
  while clause_lit s c !k <> l do
    incr k
  done;
  Arena.remove_lit_at s.ar c !k;
  log_proof s (P_add (clause_lits s c));
  log_proof s (P_delete old);
  if n - 1 = 1 then begin
    let u = clause_lit s c 0 in
    clear_reasons_of s c;
    mark_clause s c;
    root_commit_unit s u
  end
  else attach_clause s c

(* Rewrite a (currently detached) clause to the literal subset [keep],
   produced by vivification.  Root-true literals mean the clause is now
   redundant; root-false literals are dropped. *)
let simp_replace_clause s c keep =
  let old = clause_lits s c in
  let finish_remove () =
    log_proof s (P_delete old);
    clear_reasons_of s c;
    mark_clause s c
  in
  if Array.exists (fun l -> lit_value s l = 1) keep then finish_remove ()
  else begin
    let kept = Array.of_list (List.filter (fun l -> lit_value s l <> 0) (Array.to_list keep)) in
    match Array.length kept with
    | 0 ->
        log_proof s (P_add [||]);
        s.ok <- false;
        finish_remove ()
    | 1 ->
        log_proof s (P_add kept);
        finish_remove ();
        root_commit_unit s kept.(0)
    | m ->
        for k = 0 to m - 1 do
          Arena.set_lit s.ar c k kept.(k)
        done;
        Arena.set_size s.ar c m;
        log_proof s (P_add (clause_lits s c));
        log_proof s (P_delete old);
        attach_clause s c
  end

(* Learnt clauses mentioning an eliminated variable could still propagate
   it, breaking the elimination invariant (the variable must stay free so
   model extension can choose it).  Purge them at elimination time. *)
let purge_learnts_of s v =
  Vec.iter
    (fun c ->
      if not (clause_marked s c) then begin
        let n = clause_size s c in
        let hit = ref false in
        for k = 0 to n - 1 do
          if Lit.var (clause_lit s c k) = v then hit := true
        done;
        if !hit then begin
          log_proof s (P_delete (clause_lits s c));
          detach_clause s c;
          clear_reasons_of s c;
          mark_clause s c
        end
      end)
    s.learnts

let simp_eliminate_var s v =
  s.eliminated.(v) <- true;
  s.n_eliminated <- s.n_eliminated + 1;
  purge_learnts_of s v

let simp_host s =
  {
    Simp.nvars = s.nvars;
    ar = s.ar;
    clauses = s.clauses;
    learnts = s.learnts;
    value = (fun l -> lit_value s l);
    frozen = (fun v -> s.frozen.(v));
    assigned = (fun v -> s.assigns.(v) >= 0);
    proof = s.proof_enabled;
    solver_ok = (fun () -> s.ok);
    trail_size = (fun () -> Vec.length s.trail);
    trail_lit = (fun i -> Vec.get s.trail i);
    remove_clause = (fun c -> simp_remove_clause s c);
    strengthen_clause = (fun c l -> simp_strengthen_clause s c l);
    replace_clause = (fun c keep -> simp_replace_clause s c keep);
    add_resolvent = (fun lits -> add_clause_core s lits);
    eliminate_var = (fun v -> simp_eliminate_var s v);
    detach_clause = (fun c -> detach_clause s c);
    attach_clause = (fun c -> attach_clause s c);
    assume =
      (fun l ->
        new_decision_level s;
        enqueue s l no_cref);
    propagate_ok = (fun () -> propagate s < 0);
    backtrack = (fun () -> cancel_until s 0);
    propagation_count = (fun () -> s.n_propagations);
  }

(* Filter dead crefs out of the clause vectors after a simplification
   pass, and compact the arena once a quarter of it is waste. *)
let simp_cleanup s =
  Vec.filter_in_place (fun c -> not (clause_marked s c)) s.clauses;
  Vec.filter_in_place (fun c -> not (clause_marked s c)) s.learnts;
  if s.ar.Arena.dead * 4 > s.ar.Arena.len then gc_arena s

(* Root simplification session at the start of a [solve].  A session
   rebuilds the occurrence index and re-strips the whole clause database
   — O(formula) — so it only runs once the problem has grown enough to
   amortise that: always on the first solve, then when new clauses plus
   new root units amount to [session_growth] percent of the database AND
   the solver has actually worked ([session_min_conflicts] conflicts)
   since the previous session.  The conflict gate scales simplification
   effort to search effort: incremental workloads whose solves are
   trivial (e.g. a point-function attack finding one easy DIP per call)
   never pay for passes they cannot amortise, while conflict-heavy
   instances keep inprocessing eagerly. *)
let maybe_simplify s =
  let nc = Vec.length s.clauses in
  let grown =
    nc - s.clause_cursor + (Vec.length s.trail - s.last_trail_simp)
  in
  let cfg = Simp.config s.simp in
  if
    s.simp_enabled && s.ok && grown > 0
    && (s.clause_cursor = 0
       || 100 * grown >= cfg.Simp.session_growth * nc
          && s.n_conflicts - s.last_conflicts_simp >= cfg.Simp.session_min_conflicts)
  then begin
    let run () =
      Simp.session s.simp (simp_host s) ~new_from:s.clause_cursor;
      simp_cleanup s;
      s.clause_cursor <- Vec.length s.clauses;
      s.last_trail_simp <- Vec.length s.trail;
      s.last_conflicts_simp <- s.n_conflicts
    in
    if Tel.enabled () then begin
      Tel.span_begin ~a0:(Vec.length s.clauses) "sat.simp";
      run ();
      Tel.span_end ~v:(Vec.length s.clauses) ()
    end
    else run ()
  end

(* Restart-boundary inprocessing: vivification under a propagation
   budget. *)
let maybe_inprocess s =
  if
    s.simp_enabled && s.ok
    && s.n_restarts - s.last_viv_restart >= (Simp.config s.simp).Simp.inprocess_interval
  then begin
    s.last_viv_restart <- s.n_restarts;
    let run () =
      Simp.vivify s.simp (simp_host s);
      simp_cleanup s
    in
    if Tel.enabled () then begin
      Tel.span_begin ~a0:(Vec.length s.learnts) "sat.simp.vivify";
      run ();
      Tel.span_end ~v:(Vec.length s.learnts) ()
    end
    else run ()
  end

(* --- Luby restart sequence --- *)

let rec luby y x =
  let rec find size seq = if size >= x + 1 then (size, seq) else find ((2 * size) + 1) (seq + 1) in
  let size, seq = find 1 0 in
  if size - 1 = x then y ** float_of_int seq else luby y (x - ((size - 1) / 2))

(* --- Decisions --- *)

let pick_branch_var s =
  let random_pick =
    if s.nvars > 0 && Ll_util.Prng.float s.prng 1.0 < random_decision_freq then begin
      let v = Ll_util.Prng.int s.prng s.nvars in
      if s.assigns.(v) < 0 && not s.eliminated.(v) then Some v else None
    end
    else None
  in
  match random_pick with
  | Some v -> Some v
  | None ->
      let rec next () =
        if Heap.is_empty s.order then None
        else
          let v = Heap.remove_max s.order in
          if s.assigns.(v) < 0 && not s.eliminated.(v) then Some v else next ()
      in
      next ()

(* --- Search --- *)

type search_outcome = O_sat | O_unsat | O_restart

let record_learnt s lits lbd =
  if Tel.enabled () then Tel.Metric.observe h_lbd (float_of_int lbd);
  log_proof s (P_add (Array.copy lits));
  s.n_learnt_literals <- s.n_learnt_literals + Array.length lits;
  match Array.length lits with
  | 1 -> enqueue s lits.(0) no_cref
  | _ ->
      let c = Arena.alloc s.ar lits ~learnt:true ~lbd in
      Vec.push s.learnts c;
      attach_clause s c;
      bump_clause s c;
      enqueue s lits.(0) c

let search s ~assumptions ~conflict_budget ~max_learnts ~conflict_limit =
  let conflicts_here = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    let confl = propagate s in
    if confl >= 0 then begin
      s.n_conflicts <- s.n_conflicts + 1;
      incr conflicts_here;
      if conflict_limit > 0 && s.n_conflicts >= conflict_limit then raise Conflict_limit;
      if decision_level s = 0 then begin
        s.ok <- false;
        log_proof s (P_add [||]);
        outcome := Some O_unsat
      end
      else begin
        let learnt, bt_level, lbd = analyze s confl in
        cancel_until s bt_level;
        record_learnt s learnt lbd;
        decay_var_activity s;
        decay_clause_activity s
      end
    end
    else if !conflicts_here >= conflict_budget then begin
      cancel_until s 0;
      outcome := Some O_restart
    end
    else begin
      if float_of_int (Vec.length s.learnts) >= max_learnts then reduce_db s;
      let level = decision_level s in
      if level < Array.length assumptions then begin
        (* Re-decide pending assumptions before free decisions. *)
        let a = assumptions.(level) in
        match lit_value s a with
        | 1 -> new_decision_level s (* dummy level; already true *)
        | 0 -> outcome := Some O_unsat (* unsat under assumptions *)
        | _ ->
            new_decision_level s;
            enqueue s a no_cref
      end
      else begin
        match pick_branch_var s with
        | None -> outcome := Some O_sat
        | Some v ->
            s.n_decisions <- s.n_decisions + 1;
            new_decision_level s;
            enqueue s (Lit.make v s.polarity.(v)) no_cref
      end
    end
  done;
  Option.get !outcome

(* Complete a Sat model over eliminated variables by replaying the
   eliminated-clause stack (values land in [ext_model], consulted by
   [value]). *)
let extend_model s =
  if s.n_eliminated > 0 then begin
    Array.fill s.ext_model 0 (Array.length s.ext_model) (-1);
    Simp.extend_model s.simp
      ~value:(fun v -> if s.assigns.(v) >= 0 then s.assigns.(v) else s.ext_model.(v))
      ~set:(fun v b -> s.ext_model.(v) <- b)
  end

let solve_core ~assumptions ~conflict_limit s =
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    let assumptions = Array.of_list assumptions in
    (* Assumption variables: re-activate any that were eliminated, and
       freeze them for the duration of this solve so the simplification
       session below cannot eliminate them from under the search
       (MiniSAT SimpSolver's "extra frozen" discipline). *)
    let extra_frozen = ref [] in
    Array.iter
      (fun l ->
        let v = Lit.var l in
        if v >= s.nvars then invalid_arg "Solver.solve: unknown assumption variable";
        if s.eliminated.(v) then restore_var s v;
        if not s.frozen.(v) then begin
          s.frozen.(v) <- true;
          extra_frozen := v :: !extra_frozen
        end)
      assumptions;
    Fun.protect
      ~finally:(fun () -> List.iter (fun v -> s.frozen.(v) <- false) !extra_frozen)
    @@ fun () ->
    maybe_simplify s;
    if not s.ok then Unsat
    else begin
      let max_learnts = ref (max 1000.0 (0.3 *. float_of_int (Vec.length s.clauses))) in
      let rec run attempt =
        let budget = int_of_float (luby 2.0 attempt *. float_of_int restart_first) in
        match
          search s ~assumptions ~conflict_budget:budget ~max_learnts:!max_learnts
            ~conflict_limit
        with
        | O_sat -> Sat
        | O_unsat ->
            cancel_until s 0;
            Unsat
        | O_restart ->
            s.n_restarts <- s.n_restarts + 1;
            Tel.instant ~a0:s.n_restarts "sat.restart";
            maybe_inprocess s;
            if not s.ok then Unsat
            else begin
              max_learnts := !max_learnts *. 1.05;
              run (attempt + 1)
            end
      in
      let result = run 0 in
      (* On Sat the trail is kept as the model until the next mutation. *)
      if result = Sat then extend_model s;
      result
    end
  end

let solve ?(assumptions = []) ?(conflict_limit = 0) s =
  if Tel.enabled () then begin
    let c0 = s.n_conflicts
    and d0 = s.n_decisions
    and p0 = s.n_propagations
    and r0 = s.n_restarts in
    let st = Simp.stats s.simp in
    let sub0 = st.Simp.subsumed
    and ssub0 = st.Simp.self_subsumed
    and el0 = st.Simp.eliminated_vars
    and viv0 = st.Simp.vivified in
    Tel.span_begin ~a0:(Vec.length s.clauses) ~a1:s.nvars "sat.solve";
    let flush () =
      Tel.Metric.incr m_solves;
      Tel.Metric.add m_conflicts (s.n_conflicts - c0);
      Tel.Metric.add m_decisions (s.n_decisions - d0);
      Tel.Metric.add m_propagations (s.n_propagations - p0);
      Tel.Metric.add m_restarts (s.n_restarts - r0);
      Tel.Metric.add m_simp_subsumed (st.Simp.subsumed - sub0);
      Tel.Metric.add m_simp_self_subsumed (st.Simp.self_subsumed - ssub0);
      Tel.Metric.add m_simp_eliminated (st.Simp.eliminated_vars - el0);
      Tel.Metric.add m_simp_vivified (st.Simp.vivified - viv0);
      Tel.Metric.observe h_conflicts_per_solve (float_of_int (s.n_conflicts - c0));
      Tel.Metric.set g_arena_words (float_of_int s.ar.Arena.len)
    in
    match solve_core ~assumptions ~conflict_limit s with
    | result ->
        flush ();
        Tel.span_end ~v:(match result with Sat -> 1 | Unsat -> 0) ();
        result
    | exception e ->
        flush ();
        Tel.span_end ~v:(-1) ~note:"exception" ();
        raise e
  end
  else solve_core ~assumptions ~conflict_limit s

let value s l =
  match lit_value s l with
  | 1 -> true
  | 0 -> false
  | _ ->
      let v = Lit.var l in
      if v < s.nvars && s.eliminated.(v) && s.ext_model.(v) >= 0 then
        s.ext_model.(v) lxor (l land 1) = 1
      else invalid_arg "Solver.value: literal unassigned in model"

let model_var s v = value s (Lit.pos v)

let ok s = s.ok

let stats s =
  let st = Simp.stats s.simp in
  {
    conflicts = s.n_conflicts;
    decisions = s.n_decisions;
    propagations = s.n_propagations;
    restarts = s.n_restarts;
    learnt_literals = s.n_learnt_literals;
    deleted_clauses = s.n_deleted;
    arena_gcs = s.n_gcs;
    arena_words = s.ar.Arena.len;
    simp_subsumed = st.Simp.subsumed;
    simp_self_subsumed = st.Simp.self_subsumed;
    simp_eliminated_vars = st.Simp.eliminated_vars;
    simp_vivified = st.Simp.vivified;
  }

let enable_proof s =
  if s.n_eliminated > 0 then
    invalid_arg "Solver.enable_proof: variables were already eliminated; enable before solving";
  s.proof_enabled <- true

let proof s = Vec.to_list s.proof_log
