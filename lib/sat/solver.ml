(* CDCL with two-literal watching, VSIDS + phase saving, 1UIP learning with
   one-step self-subsumption minimization, Luby restarts and learnt-clause
   deletion.  Structure follows MiniSAT 2.2. *)

type clause = {
  mutable lits : Lit.t array;
  learnt : bool;
  mutable activity : float;
  mutable lbd : int;
  mutable deleted : bool;
}

let dummy_clause = { lits = [||]; learnt = false; activity = 0.0; lbd = 0; deleted = false }

(* A watch-list entry caches a "blocking" literal of the watched clause
   (MiniSAT 2.2 / Chaff): when the blocker is already true the clause is
   satisfied and propagation skips it without touching the clause at all —
   the common case on locking miters, whose wide Tseitin clauses are
   usually satisfied by an early literal. *)
type watcher = { blocker : Lit.t; wcl : clause }

let dummy_watcher = { blocker = 0; wcl = dummy_clause }

type result = Sat | Unsat

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_literals : int;
  deleted_clauses : int;
}

exception Conflict_limit

type proof_event = P_add of Lit.t array | P_delete of Lit.t array

type t = {
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : watcher Vec.t array;  (* watches.(l): clauses watching ¬l *)
  mutable assigns : int array;  (* per var: -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : clause array;  (* dummy_clause when none *)
  mutable activity : float array;
  mutable polarity : bool array;  (* saved phase *)
  mutable seen : bool array;  (* scratch for analyze *)
  mutable order : Heap.t;
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable nvars : int;
  mutable ok : bool;
  prng : Ll_util.Prng.t;
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable n_learnt_literals : int;
  mutable n_deleted : int;
  mutable proof_enabled : bool;
  proof_log : proof_event Vec.t;
}

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999
let random_decision_freq = 0.02
let restart_first = 100

let create ?(seed = 0) () =
  let s =
    {
      clauses = Vec.create ~dummy:dummy_clause;
      learnts = Vec.create ~dummy:dummy_clause;
      watches = Array.init 128 (fun _ -> Vec.create ~dummy:dummy_watcher);
      assigns = Array.make 64 (-1);
      level = Array.make 64 0;
      reason = Array.make 64 dummy_clause;
      activity = Array.make 64 0.0;
      polarity = Array.make 64 false;
      seen = Array.make 64 false;
      order = Heap.create ~score:(fun _ -> 0.0);
      trail = Vec.create ~dummy:0;
      trail_lim = Vec.create ~dummy:0;
      qhead = 0;
      var_inc = 1.0;
      cla_inc = 1.0;
      nvars = 0;
      ok = true;
      prng = Ll_util.Prng.create seed;
      n_conflicts = 0;
      n_decisions = 0;
      n_propagations = 0;
      n_restarts = 0;
      n_learnt_literals = 0;
      n_deleted = 0;
      proof_enabled = false;
      proof_log = Vec.create ~dummy:(P_add [||]);
    }
  in
  (* The heap scores through the record so activity-array reallocation in
     [grow_arrays] stays visible. *)
  s.order <- Heap.create ~score:(fun v -> s.activity.(v));
  s

let num_vars s = s.nvars

let num_clauses s = Vec.length s.clauses

let num_learnts s = Vec.length s.learnts

let grow_arrays s needed =
  let old = Array.length s.assigns in
  if needed > old then begin
    let n = max needed (2 * old) in
    let grown (type a) (a : a array) (fill : a) =
      let fresh = Array.make n fill in
      Array.blit a 0 fresh 0 old;
      fresh
    in
    s.assigns <- grown s.assigns (-1);
    s.level <- grown s.level 0;
    s.reason <- grown s.reason dummy_clause;
    s.activity <- grown s.activity 0.0;
    s.polarity <- grown s.polarity false;
    s.seen <- grown s.seen false
  end;
  let old_w = Array.length s.watches in
  if 2 * needed > old_w then begin
    let n = max (2 * needed) (2 * old_w) in
    s.watches <-
      Array.init n (fun i -> if i < old_w then s.watches.(i) else Vec.create ~dummy:dummy_watcher)
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  grow_arrays s s.nvars;
  Heap.insert s.order v;
  v

(* Value of a literal: -1 unassigned, 0 false, 1 true. *)
let lit_value s l =
  let v = s.assigns.(Lit.var l) in
  if v < 0 then -1 else v lxor (l land 1)

let decision_level s = Vec.length s.trail_lim

let log_proof s event = if s.proof_enabled then Vec.push s.proof_log event

let enqueue s l reason =
  s.assigns.(Lit.var l) <- 1 lxor (l land 1);
  s.level.(Lit.var l) <- decision_level s;
  s.reason.(Lit.var l) <- reason;
  Vec.push s.trail l

(* --- Activity --- *)

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Heap.update s.order v

let decay_var_activity s = s.var_inc <- s.var_inc *. var_decay

let bump_clause s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let decay_clause_activity s = s.cla_inc <- s.cla_inc *. clause_decay

(* --- Clause attachment --- *)

let watch s l ~blocker c = Vec.push s.watches.(l) { blocker; wcl = c }

let attach_clause s c =
  assert (Array.length c.lits >= 2);
  watch s (Lit.negate c.lits.(0)) ~blocker:c.lits.(1) c;
  watch s (Lit.negate c.lits.(1)) ~blocker:c.lits.(0) c

(* --- Propagation --- *)

let propagate s =
  let conflict = ref dummy_clause in
  while !conflict == dummy_clause && s.qhead < Vec.length s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    (* p just became true; clauses in watches.(p) watch ¬p, now false. *)
    let ws = s.watches.(p) in
    let n = Vec.length ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let w = Vec.get ws !i in
      incr i;
      (* Blocking-literal fast path: if the cached literal is already
         true the clause is satisfied — keep the watcher, skip the clause
         dereference entirely. *)
      if lit_value s w.blocker = 1 then begin
        Vec.set ws !j w;
        incr j
      end
      else begin
        let c = w.wcl in
        if not c.deleted then begin
          let false_lit = Lit.negate p in
          if c.lits.(0) = false_lit then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- false_lit
          end;
          if lit_value s c.lits.(0) = 1 then begin
            Vec.set ws !j { blocker = c.lits.(0); wcl = c };
            incr j
          end
          else begin
            let len = Array.length c.lits in
            let found = ref false in
            let k = ref 2 in
            while (not !found) && !k < len do
              if lit_value s c.lits.(!k) <> 0 then begin
                c.lits.(1) <- c.lits.(!k);
                c.lits.(!k) <- false_lit;
                watch s (Lit.negate c.lits.(1)) ~blocker:c.lits.(0) c;
                found := true
              end
              else incr k
            done;
            if not !found then begin
              (* Unit or conflicting: keep watching ¬p. *)
              Vec.set ws !j { blocker = c.lits.(0); wcl = c };
              incr j;
              if lit_value s c.lits.(0) = 0 then begin
                conflict := c;
                s.qhead <- Vec.length s.trail;
                while !i < n do
                  Vec.set ws !j (Vec.get ws !i);
                  incr j;
                  incr i
                done
              end
              else enqueue s c.lits.(0) c
            end
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  if !conflict == dummy_clause then None else Some !conflict

(* --- Backtracking --- *)

let cancel_until s target =
  if decision_level s > target then begin
    let bound = Vec.get s.trail_lim target in
    for i = Vec.length s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Lit.var l in
      s.polarity.(v) <- s.assigns.(v) = 1;
      s.assigns.(v) <- -1;
      s.reason.(v) <- dummy_clause;
      Heap.insert s.order v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim target;
    s.qhead <- Vec.length s.trail
  end

let new_decision_level s = Vec.push s.trail_lim (Vec.length s.trail)

(* --- Conflict analysis (first UIP) --- *)

(* One-step redundancy: a learnt literal is droppable when every other
   literal of its reason is already in the learnt clause (seen) or fixed at
   level 0. *)
let lit_redundant s l =
  let r = s.reason.(Lit.var l) in
  r != dummy_clause
  && Array.for_all
       (fun q -> Lit.var q = Lit.var l || s.seen.(Lit.var q) || s.level.(Lit.var q) = 0)
       r.lits

let analyze s confl =
  let learnt = Vec.create ~dummy:0 in
  Vec.push learnt 0 (* placeholder for the asserting literal *);
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.length s.trail - 1) in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    if !c.learnt then bump_clause s !c;
    Array.iter
      (fun q ->
        (* Skip the literal this reason clause propagated. *)
        if !p >= 0 && Lit.var q = Lit.var !p then ()
        else begin
          let v = Lit.var q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            bump_var s v;
            if s.level.(v) >= decision_level s then incr counter else Vec.push learnt q
          end
        end)
      !c.lits;
    let rec next_marked i =
      let l = Vec.get s.trail i in
      if s.seen.(Lit.var l) then (l, i) else next_marked (i - 1)
    in
    let l, i = next_marked !index in
    index := i - 1;
    p := l;
    s.seen.(Lit.var l) <- false;
    decr counter;
    if !counter > 0 then c := s.reason.(Lit.var l) else continue := false
  done;
  Vec.set learnt 0 (Lit.negate !p);
  s.seen.(Lit.var !p) <- true;
  (* keep the UIP marked during minimization *)
  let lits = Array.init (Vec.length learnt) (Vec.get learnt) in
  let keep = Array.mapi (fun i l -> i = 0 || not (lit_redundant s l)) lits in
  let minimized =
    Array.to_list lits |> List.filteri (fun i _ -> keep.(i)) |> Array.of_list
  in
  Array.iter (fun l -> s.seen.(Lit.var l) <- false) lits;
  s.seen.(Lit.var !p) <- false;
  let n = Array.length minimized in
  let bt_level =
    if n = 1 then 0
    else begin
      let max_i = ref 1 in
      for i = 2 to n - 1 do
        if s.level.(Lit.var minimized.(i)) > s.level.(Lit.var minimized.(!max_i)) then
          max_i := i
      done;
      let tmp = minimized.(1) in
      minimized.(1) <- minimized.(!max_i);
      minimized.(!max_i) <- tmp;
      s.level.(Lit.var minimized.(1))
    end
  in
  let module IS = Set.Make (Int) in
  let lbd =
    Array.fold_left (fun acc l -> IS.add s.level.(Lit.var l) acc) IS.empty minimized
    |> IS.cardinal
  in
  (minimized, bt_level, lbd)

(* --- Learnt clause database reduction --- *)

let locked s c =
  Array.length c.lits > 0
  && s.reason.(Lit.var c.lits.(0)) == c
  && lit_value s c.lits.(0) = 1

let reduce_db s =
  (* Ascending quality; the first half gets deleted. *)
  let quality (c : clause) = (Array.length c.lits <= 2, -c.lbd, c.activity) in
  Vec.sort_in_place (fun a b -> compare (quality a) (quality b)) s.learnts;
  let limit = Vec.length s.learnts / 2 in
  for i = 0 to limit - 1 do
    let c = Vec.get s.learnts i in
    if Array.length c.lits > 2 && not (locked s c) then begin
      c.deleted <- true;
      s.n_deleted <- s.n_deleted + 1;
      log_proof s (P_delete (Array.copy c.lits))
    end
  done;
  Vec.filter_in_place (fun c -> not c.deleted) s.learnts

(* --- Adding clauses (root level) --- *)

let add_clause_a s lits =
  if s.ok then begin
    (* Incremental use: callers add clauses right after a Sat answer, while
       the trail still holds the model.  Return to the root first. *)
    cancel_until s 0;
    let module IS = Set.Make (Int) in
    let tautology = ref false in
    let satisfied = ref false in
    let kept = ref IS.empty in
    Array.iter
      (fun l ->
        if Lit.var l >= s.nvars then invalid_arg "Solver.add_clause: unknown variable";
        if IS.mem (Lit.negate l) !kept then tautology := true;
        match lit_value s l with
        | 1 -> satisfied := true
        | 0 -> ()
        | _ -> kept := IS.add l !kept)
      lits;
    if not (!tautology || !satisfied) then begin
      let lits = Array.of_list (IS.elements !kept) in
      match Array.length lits with
      | 0 ->
          s.ok <- false;
          log_proof s (P_add [||])
      | 1 ->
          enqueue s lits.(0) dummy_clause;
          if propagate s <> None then begin
            s.ok <- false;
            log_proof s (P_add [||])
          end
      | _ ->
          let c = { lits; learnt = false; activity = 0.0; lbd = 0; deleted = false } in
          Vec.push s.clauses c;
          attach_clause s c
    end
  end

let add_clause s lits = add_clause_a s (Array.of_list lits)

(* --- Luby restart sequence --- *)

let rec luby y x =
  let rec find size seq = if size >= x + 1 then (size, seq) else find ((2 * size) + 1) (seq + 1) in
  let size, seq = find 1 0 in
  if size - 1 = x then y ** float_of_int seq else luby y (x - ((size - 1) / 2))

(* --- Decisions --- *)

let pick_branch_var s =
  let random_pick =
    if s.nvars > 0 && Ll_util.Prng.float s.prng 1.0 < random_decision_freq then begin
      let v = Ll_util.Prng.int s.prng s.nvars in
      if s.assigns.(v) < 0 then Some v else None
    end
    else None
  in
  match random_pick with
  | Some v -> Some v
  | None ->
      let rec next () =
        if Heap.is_empty s.order then None
        else
          let v = Heap.remove_max s.order in
          if s.assigns.(v) < 0 then Some v else next ()
      in
      next ()

(* --- Search --- *)

type search_outcome = O_sat | O_unsat | O_restart

let record_learnt s lits lbd =
  log_proof s (P_add (Array.copy lits));
  s.n_learnt_literals <- s.n_learnt_literals + Array.length lits;
  match Array.length lits with
  | 1 -> enqueue s lits.(0) dummy_clause
  | _ ->
      let c = { lits; learnt = true; activity = 0.0; lbd; deleted = false } in
      Vec.push s.learnts c;
      attach_clause s c;
      bump_clause s c;
      enqueue s lits.(0) c

let search s ~assumptions ~conflict_budget ~max_learnts ~conflict_limit =
  let conflicts_here = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    match propagate s with
    | Some confl ->
        s.n_conflicts <- s.n_conflicts + 1;
        incr conflicts_here;
        if conflict_limit > 0 && s.n_conflicts >= conflict_limit then raise Conflict_limit;
        if decision_level s = 0 then begin
          s.ok <- false;
          log_proof s (P_add [||]);
          outcome := Some O_unsat
        end
        else begin
          let learnt, bt_level, lbd = analyze s confl in
          cancel_until s bt_level;
          record_learnt s learnt lbd;
          decay_var_activity s;
          decay_clause_activity s
        end
    | None ->
        if !conflicts_here >= conflict_budget then begin
          cancel_until s 0;
          outcome := Some O_restart
        end
        else begin
          if float_of_int (Vec.length s.learnts) >= max_learnts then reduce_db s;
          let level = decision_level s in
          if level < Array.length assumptions then begin
            (* Re-decide pending assumptions before free decisions. *)
            let a = assumptions.(level) in
            match lit_value s a with
            | 1 -> new_decision_level s (* dummy level; already true *)
            | 0 -> outcome := Some O_unsat (* unsat under assumptions *)
            | _ ->
                new_decision_level s;
                enqueue s a dummy_clause
          end
          else begin
            match pick_branch_var s with
            | None -> outcome := Some O_sat
            | Some v ->
                s.n_decisions <- s.n_decisions + 1;
                new_decision_level s;
                enqueue s (Lit.make v s.polarity.(v)) dummy_clause
          end
        end
  done;
  Option.get !outcome

let solve ?(assumptions = []) ?(conflict_limit = 0) s =
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    let assumptions = Array.of_list assumptions in
    Array.iter
      (fun l ->
        if Lit.var l >= s.nvars then invalid_arg "Solver.solve: unknown assumption variable")
      assumptions;
    let max_learnts = ref (max 1000.0 (0.3 *. float_of_int (Vec.length s.clauses))) in
    let rec run attempt =
      let budget = int_of_float (luby 2.0 attempt *. float_of_int restart_first) in
      match
        search s ~assumptions ~conflict_budget:budget ~max_learnts:!max_learnts ~conflict_limit
      with
      | O_sat -> Sat
      | O_unsat ->
          cancel_until s 0;
          Unsat
      | O_restart ->
          s.n_restarts <- s.n_restarts + 1;
          max_learnts := !max_learnts *. 1.05;
          run (attempt + 1)
    in
    let result = run 0 in
    (* On Sat the trail is kept as the model until the next mutation. *)
    result
  end

let value s l =
  match lit_value s l with
  | 1 -> true
  | 0 -> false
  | _ -> invalid_arg "Solver.value: literal unassigned in model"

let model_var s v = value s (Lit.pos v)

let ok s = s.ok

let stats s =
  {
    conflicts = s.n_conflicts;
    decisions = s.n_decisions;
    propagations = s.n_propagations;
    restarts = s.n_restarts;
    learnt_literals = s.n_learnt_literals;
    deleted_clauses = s.n_deleted;
  }

let enable_proof s = s.proof_enabled <- true

let proof s = Vec.to_list s.proof_log
