(** Tseitin transformation of circuits into solver clauses.

    An {!env} is bound to one solver and can encode several circuits into
    it, sharing port literals — exactly what miter construction and
    incremental DIP constraints need.  [Buf] and [Not] gates reuse (and
    negate) their fanin literal instead of allocating variables, so the
    encoding stays compact. *)

type env

val create : Solver.t -> env

val solver : env -> Solver.t

val fresh_lits : env -> int -> Lit.t array
(** Allocate fresh variables, returned as positive literals. *)

val lit_true : env -> Lit.t
(** A literal forced true at the root (allocated once per env). *)

val encode :
  env ->
  Ll_netlist.Circuit.t ->
  input_lits:Lit.t array ->
  key_lits:Lit.t array ->
  Lit.t array
(** [encode env c ~input_lits ~key_lits] adds clauses constraining fresh
    gate variables to compute [c], with the circuit's primary inputs bound
    to [input_lits] and key ports to [key_lits] (port order).  Returns the
    output literals in output-port order.  Raises [Invalid_argument] on
    port-count mismatches or LUT gates wider than 16 inputs. *)

val encode_cofactored :
  env ->
  Ll_netlist.Compiled.t ->
  Ll_netlist.Compiled.scratch ->
  key_lits:Lit.t array ->
  Lit.t array
(** Direct emitter over a cofactored flat program: after
    [Compiled.cofactor_into], encodes only the live, non-constant nodes —
    constant fanins fold into their readers (dropped from AND/OR, parity-
    folded into XOR, MUX specialised on a constant select or branch, LUT
    tables restricted to their symbolic fanins) and dead nodes are never
    visited, so no intermediate simplified circuit is built.  Gate
    literals go through the same memo cache as {!encode}, so key-cone
    structure shared between DIP cofactors still deduplicates.  Returns
    the output literals in port order; an output constant under the
    cofactor yields [lit_true env] or its negation, which a caller can
    force against the oracle response exactly like any other output
    literal.  Raises [Invalid_argument] on a key literal count
    mismatch. *)

(** {1 Gate constructors}

    The memoized building blocks used by both encoders, exposed for
    custom constraint emitters.  Each returns the (cached) output literal
    of the gate over the given fanin literals. *)

val mk_and : env -> Lit.t array -> Lit.t

val mk_or : env -> Lit.t array -> Lit.t

val mk_xor : env -> Lit.t array -> Lit.t
(** n-ary parity, chained through cached 2-input XORs. *)

val mk_mux : env -> Lit.t -> Lit.t -> Lit.t -> Lit.t
(** [mk_mux env sel lo hi] — [hi] when [sel], else [lo]. *)

val mk_lut : env -> Ll_util.Bitvec.t -> Lit.t array -> Lit.t
(** Raises [Invalid_argument] on tables wider than 16 inputs. *)

val force : env -> Lit.t -> bool -> unit
(** Unit-clause a literal to a constant. *)

val force_equal : env -> Lit.t -> Lit.t -> unit
(** Add clauses making two literals equal. *)

val with_tap : env -> (Lit.t array -> unit) -> (unit -> 'a) -> 'a
(** [with_tap env f body] invokes [f] on every clause emitted through the
    env during [body] (both encoders, the gate constructors, {!force}),
    {e before} any {!with_batch} buffering, in emission order — the
    observed stream is exactly what reaches the solver.  The clause
    array is the one handed to the solver: observers must not retain or
    mutate it, only read (or copy) it.  Taps nest by composition (outer
    tap fires first) and are removed on exit, exception included.  Used
    by the attack layer to capture a DIP constraint's clauses for
    cross-cofactor sharing. *)

val with_batch : env -> (unit -> 'a) -> 'a
(** [with_batch env f] buffers every clause emitted by [f] (through this
    env: both encoders, the gate constructors, {!force}) and flushes them
    on exit — exception included — as one {!Solver.add_clause_batch}
    contiguous arena append, in emission order.  Nested calls are
    transparent: only the outermost batch flushes.

    Unit clauses emitted inside the batch do not propagate until the
    flush, so a batch may retain clauses that immediate emission would
    have absorbed as root-satisfied; the formula is the same but the
    clause stream can differ.  Do not solve inside [f]. *)
