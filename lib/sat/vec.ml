type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let make ~dummy capacity = { data = Array.make (max 8 capacity) dummy; len = 0; dummy }

let length v = v.len

let is_empty v = v.len = 0

let check v i = if i < 0 || i >= v.len then invalid_arg "Vec: index out of range"

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let unsafe_get v i = Array.unsafe_get v.data i

let unsafe_set v i x = Array.unsafe_set v.data i x

let grow v =
  let data = Array.make (2 * Array.length v.data) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))

let sort_in_place cmp v =
  let live = Array.sub v.data 0 v.len in
  Array.sort cmp live;
  Array.blit live 0 v.data 0 v.len

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    let x = v.data.(i) in
    if p x then begin
      v.data.(!j) <- x;
      incr j
    end
  done;
  let old_len = v.len in
  v.len <- !j;
  Array.fill v.data v.len (old_len - v.len) v.dummy
