(** MiniSAT/SatELite-style preprocessing and inprocessing over the flat
    clause arena.

    The engine owns the simplification {e algorithms} — variable-indexed
    occurrence lists, forward/backward subsumption and self-subsuming
    resolution with 64-bit signature filtering, bounded variable
    elimination (BVE) by clause distribution, and clause vivification —
    while the solver retains ownership of the clause database {e
    bookkeeping} (watches, reasons, trail, proof log).  The two meet
    through a {!host} record of callbacks the solver passes in per call.

    Two entry points:

    - {!session} runs at the root, at the start of a [solve]: strip
      root-satisfied clauses and root-false literals, subsume, strengthen,
      and (unless a DRUP proof is being recorded) eliminate unfrozen
      variables.  Eliminated clauses are pushed onto an internal stack so
      {!extend_model} can later complete any model over the surviving
      variables.
    - {!vivify} runs at restart boundaries under a propagation budget:
      high-activity learnt clauses (plus a rotating sample of problem
      clauses) are re-derived literal-by-literal under trial assumptions
      and shrunk when propagation proves a suffix redundant.

    Everything except BVE preserves logical equivalence, so it is sound
    under arbitrary later clause additions.  BVE only preserves the model
    set projected onto the surviving variables, which is why the solver
    enforces a frozen-variable protocol: variables that may be mentioned
    by future clauses or assumptions must be frozen, and eliminated
    variables may never be re-mentioned. *)

type stats = {
  mutable subsumed : int;  (** clauses removed by (forward or backward) subsumption *)
  mutable self_subsumed : int;  (** literals removed by self-subsuming resolution *)
  mutable eliminated_vars : int;  (** variables eliminated by BVE *)
  mutable vivified : int;  (** clauses shrunk by vivification *)
  mutable removed_satisfied : int;  (** root-satisfied clauses removed *)
  mutable strengthened_lits : int;  (** root-false literals stripped *)
  mutable sessions : int;
}

type config = {
  mutable session_growth : int;
      (** percent of problem-clause growth (new clauses + new root units
          since the previous session) that schedules the next session; a
          session rebuilds the occurrence index in O(formula), so tiny
          increments — e.g. one blocking clause per incremental solve —
          must accumulate before paying for another full pass *)
  mutable session_min_conflicts : int;
      (** conflicts since the previous session required before another
          one runs: simplification effort is scaled to search effort, so
          incremental workloads whose solves are trivial (a handful of
          conflicts per call) never pay for repeated passes they cannot
          amortise, while conflict-heavy instances inprocess eagerly *)
  mutable subsumption_budget : int;
      (** occurrence-list entries and literal comparisons per session *)
  mutable subsume_occ_limit : int;
      (** skip occurrence lists longer than this during subsumption
          scans; variables shared by very many clauses (e.g. circuit
          inputs mentioned by every model-blocking clause) would
          otherwise make each queued clause pay a scan linear in the
          whole database for candidates that almost never subsume *)
  mutable bve_grow : int;  (** max clause-count growth per eliminated variable *)
  mutable bve_max_occ : int;  (** skip variables with more occurrences per polarity *)
  mutable bve_max_clause : int;  (** skip resolutions involving longer clauses *)
  mutable vivify_budget : int;  (** propagations per vivification round *)
  mutable vivify_max_clauses : int;  (** learnt candidates per round *)
  mutable inprocess_interval : int;  (** restarts between vivification rounds *)
}

val default_config : unit -> config

(** Callbacks into the owning solver.  All clause mutation goes through
    the host so watches, reasons, the proof log and hole accounting stay
    consistent; the engine itself only reads the arena.  [value] is the
    current assignment (which equals the root assignment during a
    {!session}, but includes trial decisions during {!vivify}). *)
type host = {
  nvars : int;
  ar : Arena.t;
  clauses : int Vec.t;
  learnts : int Vec.t;
  value : Lit.t -> int;  (** -1 unassigned / 0 false / 1 true *)
  frozen : int -> bool;
  assigned : int -> bool;  (** variable has a (root) value *)
  proof : bool;  (** DRUP recording active: variable elimination is disabled *)
  solver_ok : unit -> bool;
  trail_size : unit -> int;
  trail_lit : int -> Lit.t;
  remove_clause : int -> unit;
  strengthen_clause : int -> Lit.t -> unit;
  replace_clause : int -> Lit.t array -> unit;
  add_resolvent : Lit.t array -> int;  (** returns the new cref, or [-1] if absorbed *)
  eliminate_var : int -> unit;
  detach_clause : int -> unit;
  attach_clause : int -> unit;
  assume : Lit.t -> unit;
  propagate_ok : unit -> bool;  (** propagate at the current level; false on conflict *)
  backtrack : unit -> unit;  (** cancel to decision level 0 *)
  propagation_count : unit -> int;
}

type t

val create : ?config:config -> unit -> t

val config : t -> config

val stats : t -> stats

val session : t -> host -> new_from:int -> unit
(** Run one root simplification session.  [new_from] is the index into
    [host.clauses] of the first clause added since the previous session
    ([0] on the first call — a full preprocessing pass).  On return dead
    crefs are marked in the arena but still present in [host.clauses] /
    [host.learnts]; the caller filters the vectors and decides whether to
    compact the arena. *)

val vivify : t -> host -> unit
(** Run one vivification round at decision level 0, bounded by
    [vivify_budget] propagations.  Same cleanup contract as {!session}. *)

val restore : t -> var:int -> unelim:(int -> unit) -> readd:(Lit.t array -> unit) -> unit
(** Re-activate the eliminated variable [var]: pop the eliminated-clause
    stack from [var]'s first frame to the top, calling [unelim] on every
    pivot variable of the popped suffix (possibly repeatedly) and then
    [readd] on each stored original clause.  The suffix — not just
    [var]'s own frames — must be restored because clauses of
    later-eliminated variables may mention [var].  No-op when [var] has
    no frames. *)

val extend_model : t -> value:(int -> int) -> set:(int -> int -> unit) -> unit
(** Complete a model over the surviving variables to one over all
    variables, replaying the eliminated-clause stack in reverse
    elimination order.  [value v] must return the current model value of
    variable [v] (-1 unknown, consulting previous [set]s), [set v b]
    records the chosen value of an eliminated variable. *)
