(** Conflict-driven clause-learning SAT solver.

    A from-scratch implementation of the MiniSAT-era algorithm: two-literal
    watching, VSIDS decision heuristic with phase saving, first-UIP conflict
    analysis with clause minimization, Luby restarts and activity/LBD-guided
    deletion of learnt clauses.  It replaces the MiniSAT dependency of the
    original SAT attack [Subramanyan et al., HOST'15].

    The solver is incremental: clauses and variables may be added between
    {!solve} calls, and {!solve} accepts assumption literals.  A solver
    instance is not thread-safe; use one instance per domain.

    Clauses are stored in a flat integer arena (contiguous
    [header |
     activity | literals] slices of one int array, referenced by offset),
    so propagation walks cache-local memory and allocates nothing;
    learnt-clause deletion compacts the arena in place.  See the "SAT
    core" section of the architecture notes for the layout.

    {2 Inprocessing and the frozen-variable protocol}

    Unless created with [~simp:false], the solver runs a {!Simp}
    simplification session at the start of every [solve] (subsumption,
    self-subsuming resolution, bounded variable elimination) and a
    vivification round every few restarts.  Variable elimination rewrites
    the formula in a way that only preserves models {e projected onto the
    surviving variables}, so the solver keeps every eliminated clause on
    a stack.  Mentioning an eliminated variable in a later clause or
    assumption transparently {e restores} it (its original clauses are
    replayed), preserving the incremental contract; callers with
    long-lived interface variables should still {!freeze_var} them to
    avoid the eliminate/restore churn (circuit encoders freeze inputs,
    key bits and outputs; attack loops freeze their
    assumption/activation literals).  Models returned after elimination
    are automatically extended over the eliminated variables, so
    {!value} remains total on a [Sat] answer.
    While DRUP recording is enabled ({!enable_proof}), elimination is
    disabled entirely — every other simplification is
    equivalence-preserving and is logged as RUP additions/deletions. *)

type t

type result = Sat | Unsat

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_literals : int;
  deleted_clauses : int;
  arena_gcs : int;  (** clause-arena compactions performed by [reduce_db] *)
  arena_words : int;  (** live words in the clause arena (headers + literals) *)
  simp_subsumed : int;  (** clauses removed by subsumption *)
  simp_self_subsumed : int;  (** literals removed by self-subsuming resolution *)
  simp_eliminated_vars : int;  (** variables eliminated by BVE *)
  simp_vivified : int;  (** clauses shrunk by vivification *)
}

(** DRUP proof events, in derivation order.  Each added clause is a
    reverse-unit-propagation (RUP) consequence of the original formula and
    the previously added clauses; a final empty addition refutes the
    formula.  Verify with {!Drup.check_refutation}. *)
type proof_event = P_add of Lit.t array | P_delete of Lit.t array

val create : ?seed:int -> ?simp:bool -> unit -> t
(** [seed] randomises variable tie-breaking very slightly (2% random
    decisions), matching common solver defaults.  The default seed gives
    deterministic behaviour.  [simp] (default [true]) enables the
    inprocessing engine; pass [false] for a plain CDCL solver. *)

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val num_vars : t -> int

val num_clauses : t -> int
(** Problem clauses currently attached (learnt clauses excluded; unit
    clauses absorbed at the root are not counted). *)

val num_learnts : t -> int
(** Learnt clauses currently retained. *)

val add_clause : t -> Lit.t list -> unit
(** Add a clause over existing variables.  May be called between [solve]
    calls.  Adding an empty (or root-falsified) clause makes the instance
    permanently unsatisfiable.  Mentioning an eliminated variable
    restores it first (see the inprocessing notes above). *)

val add_clause_a : t -> Lit.t array -> unit

val add_clause_batch : t -> Lit.t array list -> unit
(** Add a batch of clauses as one contiguous arena append: the words for
    the whole batch are reserved up front (at most one backing-array
    growth), then the clauses are attached in list order.  Semantically
    identical to calling {!add_clause_a} on each element in turn — same
    absorption, same propagation, same final clause database. *)

val import_clauses : t -> Lit.t array list -> int
(** [import_clauses s css] adds clauses learned elsewhere (typically
    model-blocking constraints captured in a sibling cube's solver
    session and remapped into this session's variable space) as one
    contiguous arena append, exactly like {!add_clause_batch}, and
    returns the number of clauses that remained attached — absorbed
    clauses (root-satisfied, tautological, reduced to units) leave no
    arena clause and are not counted.  Every literal must be over an
    existing variable of {e this} solver; the caller owns the remapping.
    Imported clauses participate in inprocessing like any other problem
    clause. *)

val freeze_var : t -> int -> unit
(** Exempt a variable from elimination.  Call before the solve that could
    eliminate it; freezing is the caller's promise registry for variables
    that future clauses or assumptions may mention. *)

val unfreeze_var : t -> int -> unit
(** Retract {!freeze_var}: the variable becomes eligible for elimination
    at the next simplification session. *)

val is_frozen : t -> int -> bool

val is_eliminated : t -> int -> bool
(** True while the variable is eliminated by simplification.  Mentioning
    it in a new clause or assumption restores it; encoders use this flag
    to re-encode a cached gate instead of triggering a restore. *)

val solve : ?assumptions:Lit.t list -> ?conflict_limit:int -> t -> result
(** Decide satisfiability under the given assumptions.  [conflict_limit]
    bounds the search ([Unsat] is then only reported when proven; hitting
    the limit raises {!Conflict_limit}).  Assumption variables are frozen
    for the duration of the call (and restored first if previously
    eliminated). *)

exception Conflict_limit

val value : t -> Lit.t -> bool
(** Model value of a literal.  Only meaningful after a [Sat] answer, for
    variables that existed during that solve.  Total even for eliminated
    variables: their values come from the model-extension overlay. *)

val model_var : t -> int -> bool

val ok : t -> bool
(** False once the clause set is known unsatisfiable at the root. *)

val stats : t -> stats

val enable_proof : t -> unit
(** Start recording DRUP events (call before the first solve; recording
    covers clauses learnt afterwards).  Disables variable elimination for
    the lifetime of the solver; raises [Invalid_argument] if variables
    were already eliminated by an earlier solve. *)

val proof : t -> proof_event list
(** Recorded events, oldest first.  Empty when recording was never
    enabled. *)
