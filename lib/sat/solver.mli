(** Conflict-driven clause-learning SAT solver.

    A from-scratch implementation of the MiniSAT-era algorithm: two-literal
    watching, VSIDS decision heuristic with phase saving, first-UIP conflict
    analysis with clause minimization, Luby restarts and activity/LBD-guided
    deletion of learnt clauses.  It replaces the MiniSAT dependency of the
    original SAT attack [Subramanyan et al., HOST'15].

    The solver is incremental: clauses and variables may be added between
    {!solve} calls, and {!solve} accepts assumption literals.  A solver
    instance is not thread-safe; use one instance per domain.

    Clauses are stored in a flat integer arena (contiguous
    [header |
     activity | literals] slices of one int array, referenced by offset),
    so propagation walks cache-local memory and allocates nothing;
    learnt-clause deletion compacts the arena in place.  See the "SAT
    core" section of the architecture notes for the layout. *)

type t

type result = Sat | Unsat

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_literals : int;
  deleted_clauses : int;
  arena_gcs : int;  (** clause-arena compactions performed by [reduce_db] *)
  arena_words : int;  (** live words in the clause arena (headers + literals) *)
}

(** DRUP proof events, in derivation order.  Each added clause is a
    reverse-unit-propagation (RUP) consequence of the original formula and
    the previously added clauses; a final empty addition refutes the
    formula.  Verify with {!Drup.check_refutation}. *)
type proof_event = P_add of Lit.t array | P_delete of Lit.t array

val create : ?seed:int -> unit -> t
(** [seed] randomises variable tie-breaking very slightly (2% random
    decisions), matching common solver defaults.  The default seed gives
    deterministic behaviour. *)

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val num_vars : t -> int

val num_clauses : t -> int
(** Problem clauses currently attached (learnt clauses excluded; unit
    clauses absorbed at the root are not counted). *)

val num_learnts : t -> int
(** Learnt clauses currently retained. *)

val add_clause : t -> Lit.t list -> unit
(** Add a clause over existing variables.  May be called between [solve]
    calls.  Adding an empty (or root-falsified) clause makes the instance
    permanently unsatisfiable. *)

val add_clause_a : t -> Lit.t array -> unit

val solve : ?assumptions:Lit.t list -> ?conflict_limit:int -> t -> result
(** Decide satisfiability under the given assumptions.  [conflict_limit]
    bounds the search ([Unsat] is then only reported when proven; hitting
    the limit raises {!Conflict_limit}). *)

exception Conflict_limit

val value : t -> Lit.t -> bool
(** Model value of a literal.  Only meaningful after a [Sat] answer, for
    variables that existed during that solve. *)

val model_var : t -> int -> bool

val ok : t -> bool
(** False once the clause set is known unsatisfiable at the root. *)

val stats : t -> stats

val enable_proof : t -> unit
(** Start recording DRUP events (call before solving; recording covers
    clauses learnt afterwards). *)

val proof : t -> proof_event list
(** Recorded events, oldest first.  Empty when recording was never
    enabled. *)
