(* Flat clause arena (see the .mli for the word layout).  This module only
   knows about storage: allocation, header packing, in-place shrinking and
   hole accounting.  Attachment, relocation and compaction live in the
   solver, which owns the watch lists and reason array. *)

type t = {
  mutable a : int array;
  mutable len : int;
  mutable dead : int;
}

let hdr_lbd_max = 0x3ff

let hdr_size_shift = 12

let no_cref = -1

let create () = { a = Array.make 1024 0; len = 0; dead = 0 }

let size t c = t.a.(c) lsr hdr_size_shift

let learnt t c = t.a.(c) land 1 = 1

let marked t c = t.a.(c) land 2 = 2

let mark t c =
  if t.a.(c) land 2 = 0 then begin
    t.dead <- t.dead + size t c + 2;
    t.a.(c) <- t.a.(c) lor 2
  end

let unmark t c =
  if t.a.(c) land 2 = 2 then begin
    t.dead <- t.dead - (size t c + 2);
    t.a.(c) <- t.a.(c) land lnot 2
  end

let lbd t c = (t.a.(c) lsr 2) land hdr_lbd_max

(* Activities are non-negative, so the IEEE sign bit is always clear and
   the low 63 bits of the pattern fit an OCaml int exactly. *)
let act t c = Int64.float_of_bits (Int64.logand (Int64.of_int t.a.(c + 1)) Int64.max_int)

let set_act t c f = t.a.(c + 1) <- Int64.to_int (Int64.bits_of_float f)

let lit t c k = t.a.(c + 2 + k)

let set_lit t c k l = t.a.(c + 2 + k) <- l

let lits t c = Array.init (size t c) (fun k -> t.a.(c + 2 + k))

let ensure t extra =
  let need = t.len + extra in
  if need > Array.length t.a then begin
    let cap = ref (2 * Array.length t.a) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let fresh = Array.make !cap 0 in
    Array.blit t.a 0 fresh 0 t.len;
    t.a <- fresh
  end

let reserve = ensure

let alloc t lits ~learnt ~lbd =
  let n = Array.length lits in
  ensure t (n + 2);
  let c = t.len in
  t.a.(c) <-
    (n lsl hdr_size_shift) lor (min lbd hdr_lbd_max lsl 2) lor (if learnt then 1 else 0);
  t.a.(c + 1) <- 0;
  for k = 0 to n - 1 do
    t.a.(c + 2 + k) <- lits.(k)
  done;
  t.len <- c + n + 2;
  c

let set_header_size t c n = t.a.(c) <- (t.a.(c) land ((1 lsl hdr_size_shift) - 1)) lor (n lsl hdr_size_shift)

let remove_lit_at t c k =
  let n = size t c in
  t.a.(c + 2 + k) <- t.a.(c + 2 + n - 1);
  (* one-word hole where the last literal used to live *)
  t.a.(c + 2 + n - 1) <- -1;
  t.dead <- t.dead + 1;
  set_header_size t c (n - 1)

let set_size t c n' =
  let n = size t c in
  if n' > n then invalid_arg "Arena.set_size: growing";
  if n' < n then begin
    t.a.(c + 2 + n') <- -(n - n');
    t.dead <- t.dead + (n - n');
    set_header_size t c n'
  end

let signature t c =
  let s = ref 0 in
  let n = size t c in
  for k = 0 to n - 1 do
    s := !s lor (1 lsl (Lit.var t.a.(c + 2 + k) mod 63))
  done;
  !s
