module Circuit = Ll_netlist.Circuit
module Gate = Ll_netlist.Gate
module Compiled = Ll_netlist.Compiled
module Bitvec = Ll_util.Bitvec
module Tel = Ll_telemetry.Telemetry

let m_encodes = Tel.Metric.counter "kernel.encodes"

(* Gate-memoization keys.  [fan] is the canonical fanin-literal array for
   the operator (sorted-uniq for the symmetric AND/OR, as-given
   otherwise); [tbl] is non-empty only for LUTs.  A flat int-array key
   with its own hash replaces the old [(string * int list)] key — no list
   or sort allocation on the lookup path beyond one small array, and no
   polymorphic hashing. *)
module Key = struct
  type t = { tag : int; tbl : string; fan : int array }

  let equal a b =
    a.tag = b.tag
    && Array.length a.fan = Array.length b.fan
    && (let n = Array.length a.fan in
        let rec eq i = i >= n || (a.fan.(i) = b.fan.(i) && eq (i + 1)) in
        eq 0)
    && String.equal a.tbl b.tbl

  let hash k =
    let h = ref ((k.tag + 1) * 0x9e3779b1) in
    Array.iter (fun x -> h := (!h lxor (x + 0x1003f)) * 0x01000193) k.fan;
    if k.tbl <> "" then h := !h lxor Hashtbl.hash k.tbl;
    !h land max_int
end

module Cache = Hashtbl.Make (Key)

let tag_and = 0

let tag_or = 1

let tag_xor = 2

let tag_mux = 3

let tag_lut = 4

(* The env memoizes every encoded gate by (operator, fanin literals): a
   subcircuit appearing in several [encode] calls (e.g. the key cone shared
   by all DIP constraints of a SAT attack) is encoded once and reused. *)
type env = {
  solver : Solver.t;
  mutable true_lit : Lit.t option;
  cache : Lit.t Cache.t;
  (* When [Some acc], emitted clauses are buffered (in reverse) instead of
     added, and flushed by {!with_batch} as one contiguous arena append. *)
  mutable pending : Lit.t array list option;
  (* Observer of every emitted clause (before batching), used by the
     attack layer to capture a DIP constraint's clause stream for
     cross-cofactor sharing.  Never alters what reaches the solver. *)
  mutable tap : (Lit.t array -> unit) option;
}

let create solver =
  { solver; true_lit = None; cache = Cache.create 4096; pending = None; tap = None }

let solver env = env.solver

let emit env lits =
  (match env.tap with None -> () | Some f -> f lits);
  match env.pending with
  | None -> Solver.add_clause_a env.solver lits
  | Some acc -> env.pending <- Some (lits :: acc)

let with_batch env f =
  match env.pending with
  | Some _ -> f () (* already inside a batch: nest transparently *)
  | None ->
      env.pending <- Some [];
      Fun.protect
        ~finally:(fun () ->
          let acc = match env.pending with Some a -> a | None -> [] in
          env.pending <- None;
          Solver.add_clause_batch env.solver (List.rev acc))
        f

let with_tap env f body =
  let saved = env.tap in
  (* Compose with an enclosing tap so nested captures both observe. *)
  let tap =
    match saved with
    | None -> f
    | Some g ->
        fun lits ->
          g lits;
          f lits
  in
  env.tap <- Some tap;
  Fun.protect ~finally:(fun () -> env.tap <- saved) body

let fresh_lits env n = Array.init n (fun _ -> Lit.pos (Solver.new_var env.solver))

let lit_true env =
  match env.true_lit with
  | Some l -> l
  | None ->
      let l = Lit.pos (Solver.new_var env.solver) in
      emit env [| l |];
      env.true_lit <- Some l;
      l

let force env l v = emit env [| (if v then l else Lit.negate l) |]

let force_equal env a b =
  emit env [| Lit.negate a; b |];
  emit env [| a; Lit.negate b |]

let add env ls = emit env (Array.of_list ls)

(* A cached gate output is only reusable while its variable survives
   inprocessing: variable elimination may have resolved the definition
   clauses away.  On an eliminated hit, re-encode the gate onto a fresh
   variable (the fanins are checked bottom-up, so they are valid). *)
let cached env key build =
  match Cache.find_opt env.cache key with
  | Some l when not (Solver.is_eliminated env.solver (Lit.var l)) -> l
  | _ ->
      let out = Lit.pos (Solver.new_var env.solver) in
      build out;
      Cache.replace env.cache key out;
      out

(* Sorted, deduplicated copy — the canonical key form for symmetric
   gates.  Matches the old [List.sort_uniq compare] ordering on ints. *)
let sorted_uniq (xs : int array) =
  let a = Array.copy xs in
  Array.sort (fun (x : int) y -> compare x y) a;
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let m = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!m - 1) then begin
        a.(!m) <- a.(i);
        incr m
      end
    done;
    if !m = n then a else Array.sub a 0 !m
  end

(* out <-> AND(xs) *)
let mk_and env xs =
  let key = { Key.tag = tag_and; tbl = ""; fan = sorted_uniq xs } in
  cached env key (fun out ->
      Array.iter (fun x -> add env [ Lit.negate out; x ]) xs;
      add env (out :: Array.to_list (Array.map Lit.negate xs)))

(* out <-> OR(xs) *)
let mk_or env xs =
  let key = { Key.tag = tag_or; tbl = ""; fan = sorted_uniq xs } in
  cached env key (fun out ->
      Array.iter (fun x -> add env [ out; Lit.negate x ]) xs;
      add env (Lit.negate out :: Array.to_list xs))

(* out <-> a XOR b *)
let encode_xor2 env out a b =
  add env [ Lit.negate out; a; b ];
  add env [ Lit.negate out; Lit.negate a; Lit.negate b ];
  add env [ out; Lit.negate a; b ];
  add env [ out; a; Lit.negate b ]

let mk_xor2 env a b =
  let lo = min a b and hi = max a b in
  cached env { Key.tag = tag_xor; tbl = ""; fan = [| lo; hi |] } (fun out ->
      encode_xor2 env out lo hi)

let mk_xor env xs =
  let n = Array.length xs in
  if n = 1 then xs.(0)
  else begin
    let acc = ref xs.(0) in
    for i = 1 to n - 1 do
      acc := mk_xor2 env !acc xs.(i)
    done;
    !acc
  end

(* out <-> if s then hi else lo *)
let mk_mux env sel lo hi =
  cached env { Key.tag = tag_mux; tbl = ""; fan = [| sel; lo; hi |] } (fun out ->
      add env [ Lit.negate sel; Lit.negate hi; out ];
      add env [ Lit.negate sel; hi; Lit.negate out ];
      add env [ sel; Lit.negate lo; out ];
      add env [ sel; lo; Lit.negate out ];
      (* Redundant but propagation-strengthening clauses. *)
      add env [ Lit.negate lo; Lit.negate hi; out ];
      add env [ lo; hi; Lit.negate out ])

let mk_lut env table fanin_lits =
  let k = Array.length fanin_lits in
  if k > 16 then invalid_arg "Tseitin: LUT wider than 16 inputs";
  let key =
    { Key.tag = tag_lut; tbl = Bitvec.to_string table; fan = Array.copy fanin_lits }
  in
  cached env key (fun out ->
      (* One clause per minterm: (fanins = pattern) -> out = table bit. *)
      for idx = 0 to (1 lsl k) - 1 do
        let guard =
          List.init k (fun i ->
              if (idx lsr i) land 1 = 1 then Lit.negate fanin_lits.(i) else fanin_lits.(i))
        in
        let rhs = if Bitvec.get table idx then out else Lit.negate out in
        add env (rhs :: guard)
      done)

let freeze_all env lits =
  Array.iter (fun l -> Solver.freeze_var env.solver (Lit.var l)) lits

let encode env c ~input_lits ~key_lits =
  if Array.length input_lits <> Circuit.num_inputs c then
    invalid_arg "Tseitin.encode: input literal count mismatch";
  if Array.length key_lits <> Circuit.num_keys c then
    invalid_arg "Tseitin.encode: key literal count mismatch";
  (* Interface variables are re-mentioned by later clauses (miters, DIP
     constraints, model queries): exempt them from variable elimination.
     Internal gate variables stay eliminable. *)
  freeze_all env input_lits;
  freeze_all env key_lits;
  let lit_of_node = Array.make (Circuit.num_nodes c) 0 in
  let next_input = ref 0 and next_key = ref 0 in
  Array.iteri
    (fun i nd ->
      let l =
        match nd with
        | Circuit.Input ->
            let l = input_lits.(!next_input) in
            incr next_input;
            l
        | Circuit.Key_input ->
            let l = key_lits.(!next_key) in
            incr next_key;
            l
        | Circuit.Const v -> if v then lit_true env else Lit.negate (lit_true env)
        | Circuit.Gate (g, fanins) -> (
            let fl = Array.map (fun j -> lit_of_node.(j)) fanins in
            match g with
            | Gate.Buf -> fl.(0)
            | Gate.Not -> Lit.negate fl.(0)
            | Gate.And -> mk_and env fl
            | Gate.Nand -> Lit.negate (mk_and env fl)
            | Gate.Or -> mk_or env fl
            | Gate.Nor -> Lit.negate (mk_or env fl)
            | Gate.Xor -> mk_xor env fl
            | Gate.Xnor -> Lit.negate (mk_xor env fl)
            | Gate.Mux -> mk_mux env fl.(0) fl.(1) fl.(2)
            | Gate.Lut table -> mk_lut env table fl)
      in
      lit_of_node.(i) <- l)
    c.Circuit.nodes;
  let outs = Array.map (fun (_, j) -> lit_of_node.(j)) c.Circuit.outputs in
  freeze_all env outs;
  outs

(* ------------------------------------------------------------------ *)
(* Direct emitter over a cofactored flat program                       *)
(* ------------------------------------------------------------------ *)

let encode_cofactored env (p : Compiled.t) (s : Compiled.scratch) ~key_lits =
  if Array.length key_lits <> p.Compiled.num_keys then
    invalid_arg "Tseitin.encode_cofactored: key literal count mismatch";
  freeze_all env key_lits;
  Tel.span_begin "kernel.encode";
  let op = p.Compiled.op and arg = p.Compiled.arg in
  let off = p.Compiled.fanin_off and idx = p.Compiled.fanin_idx in
  let lits = s.Compiled.lits in
  let n = p.Compiled.num_nodes in
  let fl = Array.make (max 1 p.Compiled.max_fanin) 0 in
  let encoded = ref 0 in
  let tern j = Compiled.tern_val s j in
  for i = 0 to n - 1 do
    (* Only key ports and live X gates get literals; constants fold into
       their readers and dead X nodes are skipped entirely. *)
    if tern i = 2 && Compiled.is_live s i then begin
      let o = op.(i) in
      let l =
        if o = Compiled.op_key then key_lits.(arg.(i))
        else begin
          incr encoded;
          let lo = off.(i) and hi = off.(i + 1) in
          if o = Compiled.op_and || o = Compiled.op_nand then begin
            (* Constant fanins are all 1 (a 0 would make the node const). *)
            let m = ref 0 in
            for k = lo to hi - 1 do
              let j = idx.(k) in
              if tern j = 2 then begin
                fl.(!m) <- lits.(j);
                incr m
              end
            done;
            let base = if !m = 1 then fl.(0) else mk_and env (Array.sub fl 0 !m) in
            if o = Compiled.op_and then base else Lit.negate base
          end
          else if o = Compiled.op_or || o = Compiled.op_nor then begin
            let m = ref 0 in
            for k = lo to hi - 1 do
              let j = idx.(k) in
              if tern j = 2 then begin
                fl.(!m) <- lits.(j);
                incr m
              end
            done;
            let base = if !m = 1 then fl.(0) else mk_or env (Array.sub fl 0 !m) in
            if o = Compiled.op_or then base else Lit.negate base
          end
          else if o = Compiled.op_xor || o = Compiled.op_xnor then begin
            let m = ref 0 and parity = ref false in
            for k = lo to hi - 1 do
              let j = idx.(k) in
              let t = tern j in
              if t = 2 then begin
                fl.(!m) <- lits.(j);
                incr m
              end
              else if t = 1 then parity := not !parity
            done;
            let base = if !m = 1 then fl.(0) else mk_xor env (Array.sub fl 0 !m) in
            let base = if !parity then Lit.negate base else base in
            if o = Compiled.op_xor then base else Lit.negate base
          end
          else if o = Compiled.op_not then Lit.negate lits.(idx.(lo))
          else if o = Compiled.op_buf then lits.(idx.(lo))
          else if o = Compiled.op_mux then begin
            let js = idx.(lo) and ja = idx.(lo + 1) and jb = idx.(lo + 2) in
            let ts = tern js and ta = tern ja and tb = tern jb in
            if ts = 0 then lits.(ja)
            else if ts = 1 then lits.(jb)
            else begin
              let sl = lits.(js) in
              if ta = 2 && tb = 2 then mk_mux env sl lits.(ja) lits.(jb)
              else if ta = 2 then
                if tb = 1 then mk_or env [| sl; lits.(ja) |]
                else mk_and env [| Lit.negate sl; lits.(ja) |]
              else if tb = 2 then
                if ta = 1 then mk_or env [| Lit.negate sl; lits.(jb) |]
                else mk_and env [| sl; lits.(jb) |]
              else if ta = 0 then sl
              else Lit.negate sl
            end
          end
          else begin
            (* op_lut: restrict the table to the X fanins. *)
            let t = p.Compiled.luts.(arg.(i)) in
            let kf = hi - lo in
            let xpos = Array.make kf 0 in
            let m = ref 0 and base = ref 0 in
            for k = 0 to kf - 1 do
              let tv = tern idx.(lo + k) in
              if tv = 1 then base := !base lor (1 lsl k)
              else if tv = 2 then begin
                xpos.(!m) <- k;
                incr m
              end
            done;
            let mm = !m in
            if mm = 1 then begin
              let l = lits.(idx.(lo + xpos.(0))) in
              if Bitvec.get t (!base lor (1 lsl xpos.(0))) then l else Lit.negate l
            end
            else begin
              let sub =
                Bitvec.init (1 lsl mm) (fun j ->
                    let v = ref !base in
                    for b = 0 to mm - 1 do
                      if (j lsr b) land 1 = 1 then v := !v lor (1 lsl xpos.(b))
                    done;
                    Bitvec.get t !v)
              in
              let fls = Array.init mm (fun b -> lits.(idx.(lo + xpos.(b)))) in
              mk_lut env sub fls
            end
          end
        end
      in
      lits.(i) <- l
    end
  done;
  let outs =
    Array.map
      (fun j ->
        match tern j with
        | 2 -> lits.(j)
        | 1 -> lit_true env
        | _ -> Lit.negate (lit_true env))
      p.Compiled.outputs
  in
  freeze_all env outs;
  Tel.Metric.incr m_encodes;
  Tel.span_end ~v:!encoded ();
  outs
