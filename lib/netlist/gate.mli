(** Combinational gate functions.

    Gates are pure boolean functions of an ordered list of fanins.  [And],
    [Or], [Nand], [Nor], [Xor] and [Xnor] are n-ary (arity >= 1; [Xor]/[Xnor]
    fold left-to-right, i.e. n-ary parity / its complement).  [Not] and [Buf]
    are unary.  [Mux] is ternary with fanins [[|s; a; b|]] and returns [a]
    when [s] is false and [b] when [s] is true.  [Lut table] evaluates a
    truth table: with fanins [x0..x(k-1)], the output is bit
    [x0 + 2*x1 + ... + 2^(k-1)*x(k-1)] of [table]. *)

type t =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Mux
  | Lut of Ll_util.Bitvec.t

val eval : t -> bool array -> bool
(** [eval g fanins] — raises [Invalid_argument] on an arity mismatch. *)

val eval_lanes : t -> int64 array -> int64
(** Bitwise 64-lane evaluation: lane [i] of the result is [eval] applied to
    lane [i] of every fanin. *)

val eval_sub : t -> bool array -> len:int -> bool
(** [eval_sub g buf ~len] evaluates [g] over the first [len] entries of
    [buf] — a reusable-scratch variant of {!eval} for interpreter loops
    that must not allocate a fresh fanin array per gate. *)

val eval_lanes_sub : t -> int64 array -> len:int -> int64
(** 64-lane {!eval_sub}. *)

val arity_ok : t -> int -> bool
(** Whether a gate of this function may take the given number of fanins. *)

val is_symmetric : t -> bool
(** Whether fanin order is irrelevant (used by structural hashing). *)

val name : t -> string
(** Upper-case mnemonic as used by the [.bench] format ([LUT] gates print as
    [LUT_<table>]). *)

val of_name : string -> t option
(** Inverse of [name] for the non-parameterised gates ([And] … [Mux]). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
