module Bitvec = Ll_util.Bitvec

let check_lengths c ~inputs ~keys =
  if Array.length inputs <> Circuit.num_inputs c then
    invalid_arg "Eval: input vector length mismatch";
  if Array.length keys <> Circuit.num_keys c then
    invalid_arg "Eval: key vector length mismatch"

(* Reference interpreter over the circuit value itself — kept as the
   all-nodes entry point (tests, analyses) and as the differential
   reference for the compiled kernel.  The fanin values go through one
   scratch buffer grown to the widest gate, not a fresh array per gate. *)
let eval_all_nodes c ~inputs ~keys =
  check_lengths c ~inputs ~keys;
  let values = Array.make (Circuit.num_nodes c) false in
  let buf = ref (Array.make 8 false) in
  let next_input = ref 0 and next_key = ref 0 in
  Array.iteri
    (fun i nd ->
      match nd with
      | Circuit.Input ->
          values.(i) <- inputs.(!next_input);
          incr next_input
      | Circuit.Key_input ->
          values.(i) <- keys.(!next_key);
          incr next_key
      | Circuit.Const v -> values.(i) <- v
      | Circuit.Gate (g, fanins) ->
          let k = Array.length fanins in
          if k > Array.length !buf then buf := Array.make k false;
          let b = !buf in
          for j = 0 to k - 1 do
            b.(j) <- values.(fanins.(j))
          done;
          values.(i) <- Gate.eval_sub g b ~len:k)
    c.Circuit.nodes;
  values

let eval c ~inputs ~keys =
  check_lengths c ~inputs ~keys;
  Compiled.eval (Compiled.cached c) ~inputs ~keys

let eval_bv c ~inputs ~keys =
  if Bitvec.length inputs <> Circuit.num_inputs c then
    invalid_arg "Eval: input vector length mismatch";
  if Bitvec.length keys <> Circuit.num_keys c then
    invalid_arg "Eval: key vector length mismatch";
  Compiled.eval_bv (Compiled.cached c) ~inputs ~keys

let eval_lanes c ~inputs ~keys =
  if Array.length inputs <> Circuit.num_inputs c then
    invalid_arg "Eval.eval_lanes: input vector length mismatch";
  if Array.length keys <> Circuit.num_keys c then
    invalid_arg "Eval.eval_lanes: key vector length mismatch";
  Compiled.eval_lanes (Compiled.cached c) ~inputs ~keys

let exhaustive_inputs c =
  let n = Circuit.num_inputs c in
  if n > 24 then invalid_arg "Eval.exhaustive_inputs: too many inputs";
  Seq.init (1 lsl n) (fun v -> Bitvec.of_int ~width:n v)
