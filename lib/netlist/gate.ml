module Bitvec = Ll_util.Bitvec

type t =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Mux
  | Lut of Bitvec.t

let arity_ok g n =
  match g with
  | And | Or | Nand | Nor | Xor | Xnor -> n >= 1
  | Not | Buf -> n = 1
  | Mux -> n = 3
  | Lut table ->
      n >= 0 && n <= 20 && Bitvec.length table = 1 lsl n

let check g fanins =
  if not (arity_ok g (Array.length fanins)) then
    invalid_arg "Gate.eval: arity mismatch"

let fold_assoc op fanins =
  let acc = ref fanins.(0) in
  for i = 1 to Array.length fanins - 1 do
    acc := op !acc fanins.(i)
  done;
  !acc

let eval g fanins =
  check g fanins;
  match g with
  | And -> fold_assoc ( && ) fanins
  | Or -> fold_assoc ( || ) fanins
  | Nand -> not (fold_assoc ( && ) fanins)
  | Nor -> not (fold_assoc ( || ) fanins)
  | Xor -> fold_assoc ( <> ) fanins
  | Xnor -> not (fold_assoc ( <> ) fanins)
  | Not -> not fanins.(0)
  | Buf -> fanins.(0)
  | Mux -> if fanins.(0) then fanins.(2) else fanins.(1)
  | Lut table ->
      let idx = ref 0 in
      for i = Array.length fanins - 1 downto 0 do
        idx := (!idx lsl 1) lor (if fanins.(i) then 1 else 0)
      done;
      Bitvec.get table !idx

let eval_sub g fanins ~len =
  if not (arity_ok g len) then invalid_arg "Gate.eval_sub: arity mismatch";
  match g with
  | And | Nand ->
      let acc = ref true in
      for i = 0 to len - 1 do
        if not fanins.(i) then acc := false
      done;
      if g = And then !acc else not !acc
  | Or | Nor ->
      let acc = ref false in
      for i = 0 to len - 1 do
        if fanins.(i) then acc := true
      done;
      if g = Or then !acc else not !acc
  | Xor | Xnor ->
      let acc = ref false in
      for i = 0 to len - 1 do
        if fanins.(i) then acc := not !acc
      done;
      if g = Xor then !acc else not !acc
  | Not -> not fanins.(0)
  | Buf -> fanins.(0)
  | Mux -> if fanins.(0) then fanins.(2) else fanins.(1)
  | Lut table ->
      let idx = ref 0 in
      for i = len - 1 downto 0 do
        idx := (!idx lsl 1) lor (if fanins.(i) then 1 else 0)
      done;
      Bitvec.get table !idx

let eval_lanes_sub g fanins ~len =
  if not (arity_ok g len) then invalid_arg "Gate.eval_lanes_sub: arity mismatch";
  let open Int64 in
  match g with
  | And | Nand ->
      let acc = ref (-1L) in
      for i = 0 to len - 1 do
        acc := logand !acc fanins.(i)
      done;
      if g = And then !acc else lognot !acc
  | Or | Nor ->
      let acc = ref 0L in
      for i = 0 to len - 1 do
        acc := logor !acc fanins.(i)
      done;
      if g = Or then !acc else lognot !acc
  | Xor | Xnor ->
      let acc = ref 0L in
      for i = 0 to len - 1 do
        acc := logxor !acc fanins.(i)
      done;
      if g = Xor then !acc else lognot !acc
  | Not -> lognot fanins.(0)
  | Buf -> fanins.(0)
  | Mux -> logor (logand fanins.(0) fanins.(2)) (logand (lognot fanins.(0)) fanins.(1))
  | Lut table ->
      let out = ref 0L in
      for lane = 0 to 63 do
        let idx = ref 0 in
        for i = len - 1 downto 0 do
          let bit = logand (shift_right_logical fanins.(i) lane) 1L in
          idx := (!idx lsl 1) lor to_int bit
        done;
        if Bitvec.get table !idx then out := logor !out (shift_left 1L lane)
      done;
      !out

let eval_lanes g fanins =
  check g fanins;
  let open Int64 in
  match g with
  | And -> fold_assoc logand fanins
  | Or -> fold_assoc logor fanins
  | Nand -> lognot (fold_assoc logand fanins)
  | Nor -> lognot (fold_assoc logor fanins)
  | Xor -> fold_assoc logxor fanins
  | Xnor -> lognot (fold_assoc logxor fanins)
  | Not -> lognot fanins.(0)
  | Buf -> fanins.(0)
  | Mux -> logor (logand fanins.(0) fanins.(2)) (logand (lognot fanins.(0)) fanins.(1))
  | Lut table ->
      (* Bit-serial over the 64 lanes; LUT gates are rare after expansion. *)
      let out = ref 0L in
      let k = Array.length fanins in
      for lane = 0 to 63 do
        let idx = ref 0 in
        for i = k - 1 downto 0 do
          let bit = logand (shift_right_logical fanins.(i) lane) 1L in
          idx := (!idx lsl 1) lor to_int bit
        done;
        if Bitvec.get table !idx then out := logor !out (shift_left 1L lane)
      done;
      !out

let is_symmetric = function
  | And | Or | Nand | Nor | Xor | Xnor -> true
  | Not | Buf | Mux | Lut _ -> false

let name = function
  | And -> "AND"
  | Or -> "OR"
  | Nand -> "NAND"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Not -> "NOT"
  | Buf -> "BUF"
  | Mux -> "MUX"
  | Lut table -> "LUT_" ^ Bitvec.to_string table

let of_name s =
  match String.uppercase_ascii s with
  | "AND" -> Some And
  | "OR" -> Some Or
  | "NAND" -> Some Nand
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "NOT" | "INV" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | "MUX" -> Some Mux
  | _ -> None

let equal a b =
  match (a, b) with
  | Lut ta, Lut tb -> Bitvec.equal ta tb
  | Lut _, _ | _, Lut _ -> false
  | _ -> a = b

let pp fmt g = Format.pp_print_string fmt (name g)
