module Bitvec = Ll_util.Bitvec
module Tel = Ll_telemetry.Telemetry

let m_compiles = Tel.Metric.counter "kernel.compiles"

let m_cofactors = Tel.Metric.counter "kernel.cofactors"

let m_lanes = Tel.Metric.counter "kernel.lanes"

(* Opcodes.  The kernels match on these literally; keep the constants and
   the match arms in sync. *)
let op_const = 0

let op_input = 1

let op_key = 2

let op_and = 3

let op_or = 4

let op_nand = 5

let op_nor = 6

let op_xor = 7

let op_xnor = 8

let op_not = 9

let op_buf = 10

let op_mux = 11

let op_lut = 12

type t = {
  id : int;
  source : Circuit.t;
  num_nodes : int;
  num_inputs : int;
  num_keys : int;
  num_outputs : int;
  max_fanin : int;
  op : int array;
  arg : int array;
  fanin_off : int array;
  fanin_idx : int array;
  luts : Bitvec.t array;
  outputs : int array;
  input_node : int array;
  key_node : int array;
}

let next_id = Atomic.make 0

let compile c =
  Tel.span_begin "kernel.compile";
  let n = Circuit.num_nodes c in
  let op = Array.make n 0 and arg = Array.make n 0 in
  let fanin_off = Array.make (n + 1) 0 in
  let total_fanins = ref 0 in
  Array.iter
    (fun nd ->
      match nd with
      | Circuit.Gate (_, fanins) -> total_fanins := !total_fanins + Array.length fanins
      | _ -> ())
    c.Circuit.nodes;
  let fanin_idx = Array.make (max 1 !total_fanins) 0 in
  let luts = ref [] and num_luts = ref 0 in
  let next_input = ref 0 and next_key = ref 0 and pos = ref 0 and max_fanin = ref 0 in
  Array.iteri
    (fun i nd ->
      fanin_off.(i) <- !pos;
      (match nd with
      | Circuit.Input ->
          op.(i) <- op_input;
          arg.(i) <- !next_input;
          incr next_input
      | Circuit.Key_input ->
          op.(i) <- op_key;
          arg.(i) <- !next_key;
          incr next_key
      | Circuit.Const v ->
          op.(i) <- op_const;
          arg.(i) <- (if v then 1 else 0)
      | Circuit.Gate (g, fanins) ->
          (op.(i) <-
             (match g with
             | Gate.And -> op_and
             | Gate.Or -> op_or
             | Gate.Nand -> op_nand
             | Gate.Nor -> op_nor
             | Gate.Xor -> op_xor
             | Gate.Xnor -> op_xnor
             | Gate.Not -> op_not
             | Gate.Buf -> op_buf
             | Gate.Mux -> op_mux
             | Gate.Lut table ->
                 arg.(i) <- !num_luts;
                 luts := table :: !luts;
                 incr num_luts;
                 op_lut));
          let k = Array.length fanins in
          if k > !max_fanin then max_fanin := k;
          Array.iter
            (fun j ->
              fanin_idx.(!pos) <- j;
              incr pos)
            fanins))
    c.Circuit.nodes;
  fanin_off.(n) <- !pos;
  let p =
    {
      id = Atomic.fetch_and_add next_id 1;
      source = c;
      num_nodes = n;
      num_inputs = Circuit.num_inputs c;
      num_keys = Circuit.num_keys c;
      num_outputs = Circuit.num_outputs c;
      max_fanin = !max_fanin;
      op;
      arg;
      fanin_off;
      fanin_idx;
      luts = Array.of_list (List.rev !luts);
      outputs = Circuit.output_nodes c;
      input_node = c.Circuit.inputs;
      key_node = c.Circuit.keys;
    }
  in
  Tel.Metric.incr m_compiles;
  Tel.span_end ~v:n ();
  p

(* Small per-domain program memo keyed by physical equality: the [Eval]
   entry points and random-simulation loops hit the same circuit value
   over and over; recompiling per call would double their cost. *)
let cache_slots = 8

let prog_cache : (Circuit.t * t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let cached c =
  let cache = Domain.DLS.get prog_cache in
  let rec find = function
    | [] -> None
    | (c', p) :: _ when c' == c -> Some p
    | _ :: tl -> find tl
  in
  match find !cache with
  | Some p -> p
  | None ->
      let p = compile c in
      let rest = List.filteri (fun i _ -> i < cache_slots - 1) !cache in
      cache := (c, p) :: rest;
      p

type scratch = {
  for_id : int;
  vals : Bytes.t;
  lanes : int64 array;
  tern : Bytes.t;
  live : Bytes.t;
  lits : int array;
  mutable unknown : int;
}

let scratch p =
  let n = max 1 p.num_nodes in
  {
    for_id = p.id;
    vals = Bytes.make n '\000';
    lanes = Array.make n 0L;
    tern = Bytes.make n '\000';
    live = Bytes.make n '\000';
    lits = Array.make n 0;
    unknown = 0;
  }

let scratch_cache : (int, scratch) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let local_scratch p =
  let tbl = Domain.DLS.get scratch_cache in
  match Hashtbl.find_opt tbl p.id with
  | Some s -> s
  | None ->
      (* Unbounded program churn (e.g. fuzzing) must not leak scratches. *)
      if Hashtbl.length tbl > 128 then Hashtbl.reset tbl;
      let s = scratch p in
      Hashtbl.add tbl p.id s;
      s

let check_scratch p s =
  if s.for_id <> p.id then invalid_arg "Compiled: scratch belongs to another program"

(* ------------------------------------------------------------------ *)
(* Scalar kernel                                                       *)
(* ------------------------------------------------------------------ *)

(* Core loop; assumes port nodes already hold their values in [vals]. *)
let run_scalar p s =
  let op = p.op and arg = p.arg in
  let off = p.fanin_off and idx = p.fanin_idx in
  let vals = s.vals in
  let n = p.num_nodes in
  for i = 0 to n - 1 do
    let o = Array.unsafe_get op i in
    if o > op_key then begin
      let lo = Array.unsafe_get off i and hi = Array.unsafe_get off (i + 1) in
      let v =
        if o = op_and || o = op_nand then begin
          let acc = ref true in
          for k = lo to hi - 1 do
            if Bytes.unsafe_get vals (Array.unsafe_get idx k) = '\000' then acc := false
          done;
          if o = op_and then !acc else not !acc
        end
        else if o = op_or || o = op_nor then begin
          let acc = ref false in
          for k = lo to hi - 1 do
            if Bytes.unsafe_get vals (Array.unsafe_get idx k) <> '\000' then acc := true
          done;
          if o = op_or then !acc else not !acc
        end
        else if o = op_xor || o = op_xnor then begin
          let acc = ref false in
          for k = lo to hi - 1 do
            if Bytes.unsafe_get vals (Array.unsafe_get idx k) <> '\000' then
              acc := not !acc
          done;
          if o = op_xor then !acc else not !acc
        end
        else if o = op_not then
          Bytes.unsafe_get vals (Array.unsafe_get idx lo) = '\000'
        else if o = op_buf then
          Bytes.unsafe_get vals (Array.unsafe_get idx lo) <> '\000'
        else if o = op_mux then begin
          let sel = Bytes.unsafe_get vals (Array.unsafe_get idx lo) <> '\000' in
          Bytes.unsafe_get vals (Array.unsafe_get idx (if sel then lo + 2 else lo + 1))
          <> '\000'
        end
        else begin
          (* op_lut *)
          let t = Array.unsafe_get p.luts (Array.unsafe_get arg i) in
          let v = ref 0 in
          for k = hi - 1 downto lo do
            v :=
              (!v lsl 1)
              lor
              if Bytes.unsafe_get vals (Array.unsafe_get idx k) = '\000' then 0 else 1
          done;
          Bitvec.get t !v
        end
      in
      Bytes.unsafe_set vals i (if v then '\001' else '\000')
    end
    else if o = op_const then
      Bytes.unsafe_set vals i (if Array.unsafe_get arg i = 1 then '\001' else '\000')
  done

let set_ports_bool p s ~inputs ~keys =
  Array.iteri
    (fun pos j -> Bytes.unsafe_set s.vals j (if inputs.(pos) then '\001' else '\000'))
    p.input_node;
  Array.iteri
    (fun pos j -> Bytes.unsafe_set s.vals j (if keys.(pos) then '\001' else '\000'))
    p.key_node

let eval_into p s ~inputs ~keys =
  check_scratch p s;
  if Array.length inputs <> p.num_inputs then
    invalid_arg "Compiled.eval_into: input vector length mismatch";
  if Array.length keys <> p.num_keys then
    invalid_arg "Compiled.eval_into: key vector length mismatch";
  set_ports_bool p s ~inputs ~keys;
  run_scalar p s;
  Tel.Metric.incr m_lanes

let node_val s i = Bytes.get s.vals i <> '\000'

let output_val p s j = Bytes.get s.vals p.outputs.(j) <> '\000'

let read_outputs p s = Array.map (fun j -> Bytes.get s.vals j <> '\000') p.outputs

let eval p ~inputs ~keys =
  let s = local_scratch p in
  eval_into p s ~inputs ~keys;
  read_outputs p s

let eval_bv p ~inputs ~keys =
  if Bitvec.length inputs <> p.num_inputs then
    invalid_arg "Compiled.eval_bv: input vector length mismatch";
  if Bitvec.length keys <> p.num_keys then
    invalid_arg "Compiled.eval_bv: key vector length mismatch";
  let s = local_scratch p in
  Array.iteri
    (fun pos j -> Bytes.unsafe_set s.vals j (if Bitvec.get inputs pos then '\001' else '\000'))
    p.input_node;
  Array.iteri
    (fun pos j -> Bytes.unsafe_set s.vals j (if Bitvec.get keys pos then '\001' else '\000'))
    p.key_node;
  run_scalar p s;
  Tel.Metric.incr m_lanes;
  Bitvec.init p.num_outputs (fun j -> Bytes.get s.vals p.outputs.(j) <> '\000')

(* ------------------------------------------------------------------ *)
(* 64-lane packed kernel                                               *)
(* ------------------------------------------------------------------ *)

let run_lanes p s =
  let op = p.op and arg = p.arg in
  let off = p.fanin_off and idx = p.fanin_idx in
  let lanes = s.lanes in
  let n = p.num_nodes in
  for i = 0 to n - 1 do
    let o = Array.unsafe_get op i in
    if o > op_key then begin
      let lo = Array.unsafe_get off i and hi = Array.unsafe_get off (i + 1) in
      let v =
        if o = op_and || o = op_nand then begin
          let acc = ref (-1L) in
          for k = lo to hi - 1 do
            acc := Int64.logand !acc (Array.unsafe_get lanes (Array.unsafe_get idx k))
          done;
          if o = op_and then !acc else Int64.lognot !acc
        end
        else if o = op_or || o = op_nor then begin
          let acc = ref 0L in
          for k = lo to hi - 1 do
            acc := Int64.logor !acc (Array.unsafe_get lanes (Array.unsafe_get idx k))
          done;
          if o = op_or then !acc else Int64.lognot !acc
        end
        else if o = op_xor || o = op_xnor then begin
          let acc = ref 0L in
          for k = lo to hi - 1 do
            acc := Int64.logxor !acc (Array.unsafe_get lanes (Array.unsafe_get idx k))
          done;
          if o = op_xor then !acc else Int64.lognot !acc
        end
        else if o = op_not then
          Int64.lognot (Array.unsafe_get lanes (Array.unsafe_get idx lo))
        else if o = op_buf then Array.unsafe_get lanes (Array.unsafe_get idx lo)
        else if o = op_mux then begin
          let sel = Array.unsafe_get lanes (Array.unsafe_get idx lo) in
          let a = Array.unsafe_get lanes (Array.unsafe_get idx (lo + 1)) in
          let b = Array.unsafe_get lanes (Array.unsafe_get idx (lo + 2)) in
          Int64.logor (Int64.logand sel b) (Int64.logand (Int64.lognot sel) a)
        end
        else begin
          (* op_lut: bit-serial over the lanes; LUT gates are rare. *)
          let t = Array.unsafe_get p.luts (Array.unsafe_get arg i) in
          let out = ref 0L in
          for lane = 0 to 63 do
            let v = ref 0 in
            for k = hi - 1 downto lo do
              let w = Array.unsafe_get lanes (Array.unsafe_get idx k) in
              v :=
                (!v lsl 1)
                lor Int64.to_int (Int64.logand (Int64.shift_right_logical w lane) 1L)
            done;
            if Bitvec.get t !v then out := Int64.logor !out (Int64.shift_left 1L lane)
          done;
          !out
        end
      in
      Array.unsafe_set lanes i v
    end
    else if o = op_const then
      Array.unsafe_set lanes i (if Array.unsafe_get arg i = 1 then -1L else 0L)
  done

let eval_lanes_into p s ~inputs ~keys =
  check_scratch p s;
  if Array.length inputs <> p.num_inputs then
    invalid_arg "Compiled.eval_lanes_into: input vector length mismatch";
  if Array.length keys <> p.num_keys then
    invalid_arg "Compiled.eval_lanes_into: key vector length mismatch";
  Array.iteri (fun pos j -> s.lanes.(j) <- inputs.(pos)) p.input_node;
  Array.iteri (fun pos j -> s.lanes.(j) <- keys.(pos)) p.key_node;
  run_lanes p s;
  Tel.Metric.add m_lanes 64

let output_lanes p s j = s.lanes.(p.outputs.(j))

let read_output_lanes p s = Array.map (fun j -> s.lanes.(j)) p.outputs

let eval_lanes p ~inputs ~keys =
  let s = local_scratch p in
  eval_lanes_into p s ~inputs ~keys;
  read_output_lanes p s

(* ------------------------------------------------------------------ *)
(* Ternary cofactor kernel                                             *)
(* ------------------------------------------------------------------ *)

(* tern codes: 0 = constant false, 1 = constant true, 2 = X (depends on a
   key input under this cofactor). *)
let t0 = '\000'

let t1 = '\001'

let tx = '\002'

let cofactor_into p s ~inputs =
  check_scratch p s;
  if Array.length inputs <> p.num_inputs then
    invalid_arg "Compiled.cofactor_into: input vector length mismatch";
  let op = p.op and arg = p.arg in
  let off = p.fanin_off and idx = p.fanin_idx in
  let tern = s.tern in
  let n = p.num_nodes in
  let unknown = ref 0 in
  (* Forward sweep: constant-ness and value in one pass. *)
  for i = 0 to n - 1 do
    let o = Array.unsafe_get op i in
    let v =
      if o = op_input then if inputs.(Array.unsafe_get arg i) then t1 else t0
      else if o = op_key then tx
      else if o = op_const then if Array.unsafe_get arg i = 1 then t1 else t0
      else begin
        let lo = Array.unsafe_get off i and hi = Array.unsafe_get off (i + 1) in
        if o = op_and || o = op_nand then begin
          let any0 = ref false and anyx = ref false in
          for k = lo to hi - 1 do
            let f = Bytes.unsafe_get tern (Array.unsafe_get idx k) in
            if f = t0 then any0 := true else if f = tx then anyx := true
          done;
          let r = if !any0 then t0 else if !anyx then tx else t1 in
          if o = op_and || r = tx then r else if r = t0 then t1 else t0
        end
        else if o = op_or || o = op_nor then begin
          let any1 = ref false and anyx = ref false in
          for k = lo to hi - 1 do
            let f = Bytes.unsafe_get tern (Array.unsafe_get idx k) in
            if f = t1 then any1 := true else if f = tx then anyx := true
          done;
          let r = if !any1 then t1 else if !anyx then tx else t0 in
          if o = op_or || r = tx then r else if r = t0 then t1 else t0
        end
        else if o = op_xor || o = op_xnor then begin
          let parity = ref false and anyx = ref false in
          for k = lo to hi - 1 do
            let f = Bytes.unsafe_get tern (Array.unsafe_get idx k) in
            if f = tx then anyx := true else if f = t1 then parity := not !parity
          done;
          if !anyx then tx
          else begin
            let r = if o = op_xor then !parity else not !parity in
            if r then t1 else t0
          end
        end
        else if o = op_not then begin
          let f = Bytes.unsafe_get tern (Array.unsafe_get idx lo) in
          if f = tx then tx else if f = t0 then t1 else t0
        end
        else if o = op_buf then Bytes.unsafe_get tern (Array.unsafe_get idx lo)
        else if o = op_mux then begin
          let sel = Bytes.unsafe_get tern (Array.unsafe_get idx lo) in
          let a = Bytes.unsafe_get tern (Array.unsafe_get idx (lo + 1)) in
          let b = Bytes.unsafe_get tern (Array.unsafe_get idx (lo + 2)) in
          if sel = t0 then a
          else if sel = t1 then b
          else if a = b && a <> tx then a
          else tx
        end
        else begin
          (* op_lut: constant iff every completion of the X fanins agrees. *)
          let t = Array.unsafe_get p.luts (Array.unsafe_get arg i) in
          let k_fan = hi - lo in
          let base = ref 0 and m = ref 0 in
          (* [base]: known bits in place; unknown positions collected. *)
          let unknown_pos = s.lits in
          (* borrow the lits buffer as an int scratch; rewritten by the
             encoder anyway, and never used concurrently with it *)
          for k = 0 to k_fan - 1 do
            let f = Bytes.unsafe_get tern (Array.unsafe_get idx (lo + k)) in
            if f = t1 then base := !base lor (1 lsl k)
            else if f = tx then begin
              unknown_pos.(!m) <- k;
              incr m
            end
          done;
          if !m = 0 then if Bitvec.get t !base then t1 else t0
          else begin
            let first = ref (-1) and agree = ref true in
            let combos = 1 lsl !m in
            let c = ref 0 in
            while !agree && !c < combos do
              let v = ref !base in
              for b = 0 to !m - 1 do
                if (!c lsr b) land 1 = 1 then v := !v lor (1 lsl unknown_pos.(b))
              done;
              let bit = if Bitvec.get t !v then 1 else 0 in
              if !first = -1 then first := bit else if bit <> !first then agree := false;
              incr c
            done;
            if !agree then if !first = 1 then t1 else t0 else tx
          end
        end
      end
    in
    Bytes.unsafe_set tern i v;
    if v = tx then incr unknown
  done;
  s.unknown <- !unknown;
  (* Backward sweep: which X nodes do the non-constant outputs reach?
     Constant fanins are dead (the emitter folds their values), and a MUX
     whose select collapsed keeps only the selected branch. *)
  let live = s.live in
  Bytes.fill live 0 n '\000';
  Array.iter
    (fun j -> if Bytes.unsafe_get tern j = tx then Bytes.unsafe_set live j '\001')
    p.outputs;
  for i = n - 1 downto 0 do
    if Bytes.unsafe_get live i = '\001' then begin
      let o = Array.unsafe_get op i in
      if o > op_key then begin
        let lo = Array.unsafe_get off i and hi = Array.unsafe_get off (i + 1) in
        if o = op_mux && Bytes.unsafe_get tern (Array.unsafe_get idx lo) <> tx then begin
          let branch =
            if Bytes.unsafe_get tern (Array.unsafe_get idx lo) = t1 then lo + 2
            else lo + 1
          in
          let j = Array.unsafe_get idx branch in
          if Bytes.unsafe_get tern j = tx then Bytes.unsafe_set live j '\001'
        end
        else
          for k = lo to hi - 1 do
            let j = Array.unsafe_get idx k in
            if Bytes.unsafe_get tern j = tx then Bytes.unsafe_set live j '\001'
          done
      end
    end
  done;
  Tel.Metric.incr m_cofactors

let tern_val s i = Char.code (Bytes.get s.tern i)

let output_tern p s j = Char.code (Bytes.get s.tern p.outputs.(j))

let is_live s i = Bytes.get s.live i = '\001'

let unknown_count s = s.unknown
