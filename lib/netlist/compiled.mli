(** Compiled flat-netlist kernel.

    A one-shot compiler from {!Circuit.t} into a flat program — an opcode
    array, CSR fanin arrays and port/output index maps — plus kernels that
    run over it with caller-owned scratch buffers and zero per-gate
    allocation:

    - scalar and 64-lane packed simulation ({!eval_into},
      {!eval_lanes_into});
    - an in-place ternary (0/1/X) constant-propagation cofactor pass that
      pins every primary input and leaves key inputs symbolic
      ({!cofactor_into}), the substrate of the per-DIP constraint
      generation in the SAT attack (the matching Tseitin emitter lives in
      [Ll_sat.Tseitin.encode_cofactored], above this library in the
      layering).

    {b Scratch ownership.}  A {!scratch} belongs to exactly one domain at
    a time: the kernels write its buffers with no synchronization.  Either
    allocate one per task ({!scratch}) or use the per-domain cache
    ({!local_scratch}), which hands every domain its own buffers keyed by
    program identity — the pattern used by [Attack.Oracle] so one
    precompiled oracle serves any number of pool workers allocation-free.
    Programs themselves are immutable after {!compile} and safe to share
    across domains. *)

(** {1 The flat program} *)

type t = private {
  id : int;  (** process-unique, keys the per-domain scratch cache *)
  source : Circuit.t;
  num_nodes : int;
  num_inputs : int;
  num_keys : int;
  num_outputs : int;
  max_fanin : int;
  op : int array;  (** opcode per node, one of the [op_*] codes below *)
  arg : int array;
      (** per-opcode argument: port position ([op_input]/[op_key]),
          constant value 0/1 ([op_const]), index into [luts] ([op_lut]),
          0 otherwise *)
  fanin_off : int array;  (** CSR offsets, length [num_nodes + 1] *)
  fanin_idx : int array;  (** CSR fanin node indices, in fanin order *)
  luts : Ll_util.Bitvec.t array;  (** LUT truth tables, in [arg] order *)
  outputs : int array;  (** driving node of every output, port order *)
  input_node : int array;  (** node index of every primary input port *)
  key_node : int array;  (** node index of every key port *)
}

(** Opcodes ([op] entries).  Fixed small ints so kernel dispatch compiles
    to a jump table; exposed for the Tseitin emitter. *)

val op_const : int

val op_input : int

val op_key : int

val op_and : int

val op_or : int

val op_nand : int

val op_nor : int

val op_xor : int

val op_xnor : int

val op_not : int

val op_buf : int

val op_mux : int

val op_lut : int

val compile : Circuit.t -> t
(** One linear pass over the circuit.  Emits a [kernel.compile] telemetry
    span (value: node count) and bumps the [kernel.compiles] counter. *)

val cached : Circuit.t -> t
(** [compile] behind a small per-domain memo keyed by physical equality
    of the circuit — repeated simulation of the same circuit value (the
    [Eval] entry points, equivalence filtering loops) compiles once per
    domain. *)

(** {1 Scratch buffers} *)

type scratch = private {
  for_id : int;  (** the program this scratch was sized for *)
  vals : Bytes.t;  (** scalar node values, ['\000']/['\001'] *)
  lanes : int64 array;  (** packed node values, one lane per bit *)
  tern : Bytes.t;  (** ternary node values after {!cofactor_into}: 0/1/2=X *)
  live : Bytes.t;  (** 1 = node needed by a non-constant output *)
  lits : int array;  (** per-node literal slots for the Tseitin emitter *)
  mutable unknown : int;  (** #X nodes after the last {!cofactor_into} *)
}

val scratch : t -> scratch
(** Fresh buffers sized for the program — one allocation up front, none
    per kernel call. *)

val local_scratch : t -> scratch
(** The calling domain's cached scratch for this program (allocated on
    first use per domain). *)

(** {1 Simulation kernels} *)

val eval_into : t -> scratch -> inputs:bool array -> keys:bool array -> unit
(** Scalar simulation of every node into [scratch.vals].  Raises
    [Invalid_argument] on port-count mismatches. *)

val eval_lanes_into : t -> scratch -> inputs:int64 array -> keys:int64 array -> unit
(** 64-lane packed simulation into [scratch.lanes]: bit [j] of every word
    is pattern [j]. *)

val node_val : scratch -> int -> bool
(** Scalar value of a node after {!eval_into}. *)

val output_val : t -> scratch -> int -> bool
(** Scalar value of output port [j] after {!eval_into}. *)

val output_lanes : t -> scratch -> int -> int64
(** Packed value of output port [j] after {!eval_lanes_into}. *)

val read_outputs : t -> scratch -> bool array
(** All scalar output values (allocates the result array). *)

val read_output_lanes : t -> scratch -> int64 array
(** All packed output values (allocates the result array). *)

val eval : t -> inputs:bool array -> keys:bool array -> bool array
(** [eval_into] + {!read_outputs} over {!local_scratch}. *)

val eval_lanes : t -> inputs:int64 array -> keys:int64 array -> int64 array
(** [eval_lanes_into] + {!read_output_lanes} over {!local_scratch}. *)

val eval_bv :
  t -> inputs:Ll_util.Bitvec.t -> keys:Ll_util.Bitvec.t -> Ll_util.Bitvec.t
(** Scalar simulation straight from/to bit vectors — no intermediate
    [bool array]. *)

(** {1 Cofactoring} *)

val cofactor_into : t -> scratch -> inputs:bool array -> unit
(** Pin every primary input to [inputs], leave key inputs symbolic, and
    compute per node, in one topological sweep, whether it is constant
    under that cofactor and if so its value: [scratch.tern.(i)] becomes
    0, 1 or 2 (= X, key-dependent).  A second, backward sweep marks in
    [scratch.live] the nodes a non-constant output still depends on
    (constant fanins are not live; a MUX with a constant select keeps
    only its selected branch live) — the node set the Tseitin emitter
    encodes.  No intermediate circuit is built.  [scratch.unknown] is the
    number of X nodes.  Raises [Invalid_argument] on an input-count
    mismatch. *)

val tern_val : scratch -> int -> int
(** Ternary value (0/1/2) of a node after {!cofactor_into}. *)

val output_tern : t -> scratch -> int -> int
(** Ternary value of output port [j] after {!cofactor_into}. *)

val is_live : scratch -> int -> bool
(** Liveness mark of a node after {!cofactor_into}. *)

val unknown_count : scratch -> int
(** [scratch.unknown]. *)
