(** Umbrella API for the logic-locking framework.

    This module re-exports every subsystem under one namespace and offers
    high-level pipelines ({!Pipeline}) covering the common flows: lock a
    design, attack it, verify the recovered key or multi-key composition.

    Layering (bottom up):
    - {!Util}: PRNG, bit vectors, timers, atomic file writes.
    - {!Telemetry}: spans, metrics and multi-domain trace capture
      ({!Ll_telemetry.Telemetry}) with Chrome-trace/JSONL/summary
      exporters and a structural trace validator.
    - {!Runtime}: work-stealing domain pool shared by every parallel
      workload.
    - {!Netlist}: gate-level circuits, building, simulation, [.bench] I/O.
    - {!Sat}: CDCL solver, Tseitin encoding, DIMACS.
    - {!Synth}: constant propagation, structural hashing, sweeping,
      cofactoring.
    - {!Bench_suite}: ISCAS'85 stand-ins and random circuits.
    - {!Locking}: XOR/XNOR, SARLock, Anti-SAT, LUT-insertion schemes.
    - {!Attack}: oracle, miters, the classic SAT attack, the multi-key
      split attack (paper, Algorithm 1), composition (Fig. 1b) and
      equivalence checking. *)

module Util = struct
  module Prng = Ll_util.Prng
  module Bitvec = Ll_util.Bitvec
  module Timer = Ll_util.Timer
  module Fileio = Ll_util.Fileio
end

module Telemetry = struct
  module Telemetry = Ll_telemetry.Telemetry
  module Live = Ll_telemetry.Live
  module Export = Ll_telemetry.Export
  module Trace_check = Ll_telemetry.Trace_check
  module Bench_diff = Ll_telemetry.Bench_diff
end

module Runtime = struct
  module Deque = Ll_runtime.Deque
  module Pool = Ll_runtime.Pool
end

module Netlist = struct
  module Gate = Ll_netlist.Gate
  module Circuit = Ll_netlist.Circuit
  module Builder = Ll_netlist.Builder
  module Eval = Ll_netlist.Eval
  module Compiled = Ll_netlist.Compiled
  module Instantiate = Ll_netlist.Instantiate
  module Cone = Ll_netlist.Cone
  module Bench_io = Ll_netlist.Bench_io
  module Verilog_out = Ll_netlist.Verilog_out
  module Testbench = Ll_netlist.Testbench
end

module Sat = struct
  module Lit = Ll_sat.Lit
  module Solver = Ll_sat.Solver
  module Tseitin = Ll_sat.Tseitin
  module Dimacs = Ll_sat.Dimacs
end

module Bdd = struct
  module Bdd = Ll_bdd.Bdd
  module Exact = Ll_bdd.Exact
end

module Synth = struct
  module Simplify = Ll_synth.Simplify
  module Sweep = Ll_synth.Sweep
  module Optimize = Ll_synth.Optimize
  module Cofactor = Ll_synth.Cofactor
end

module Bench_suite = struct
  module Iscas = Ll_benchsuite.Iscas
  module Generator = Ll_benchsuite.Generator
  module Structured = Ll_benchsuite.Structured
end

module Locking = struct
  module Locked = Ll_locking.Locked
  module Xor_lock = Ll_locking.Xor_lock
  module Sll = Ll_locking.Sll
  module Sarlock = Ll_locking.Sarlock
  module Mixed_sarlock = Ll_locking.Mixed_sarlock
  module Antisat = Ll_locking.Antisat
  module Lut_lock = Ll_locking.Lut_lock
  module Compose_key = Ll_locking.Compose_key
end

module Attack = struct
  module Oracle = Ll_attack.Oracle
  module Miter = Ll_attack.Miter
  module Equiv = Ll_attack.Equiv
  module Fanout = Ll_attack.Fanout
  module Sat_attack = Ll_attack.Sat_attack
  module Cube_prep = Ll_attack.Cube_prep
  module Split_attack = Ll_attack.Split_attack
  module Cube_attack = Ll_attack.Cube_attack
  module Compose = Ll_attack.Compose
  module Analysis = Ll_attack.Analysis
  module Random_guess = Ll_attack.Random_guess
  module Sensitization = Ll_attack.Sensitization
  module Appsat = Ll_attack.Appsat
  module Progress = Ll_attack.Progress
end

module Pipeline = struct
  (** End-to-end convenience flows used by the examples, CLI and tests. *)

  type attack_outcome = {
    broke : bool;  (** the attack produced a functionally correct result *)
    recovered_key : Ll_util.Bitvec.t option;
    dips : int;
    total_time : float;
  }

  (** Run the classic SAT attack against a locked design whose original is
      known (the oracle is simulated from it) and verify the recovered key
      by SAT equivalence. *)
  let sat_attack_and_verify ?config ~original (locked : Ll_locking.Locked.t) =
    let oracle = Ll_attack.Oracle.of_circuit original in
    let r = Ll_attack.Sat_attack.run ?config locked.Ll_locking.Locked.circuit ~oracle in
    let broke =
      match r.Ll_attack.Sat_attack.key with
      | None -> false
      | Some key -> (
          let unlocked = Ll_netlist.Instantiate.bind_keys locked.circuit key in
          match Ll_attack.Equiv.check original unlocked with
          | Ll_attack.Equiv.Equivalent -> true
          | Ll_attack.Equiv.Counterexample _ -> false)
    in
    {
      broke;
      recovered_key = r.key;
      dips = r.num_dips;
      total_time = r.total_time;
    }

  (** Run the multi-key split attack with effort [n], compose the recovered
      keys per Fig. 1(b) and verify equivalence against the original. *)
  let split_attack_and_verify ?config ?(parallel = false) ~n ~original
      (locked : Ll_locking.Locked.t) =
    let oracle = Ll_attack.Oracle.of_circuit original in
    let attack =
      if parallel then
        Ll_attack.Split_attack.run_parallel ?config ~n locked.Ll_locking.Locked.circuit
          ~oracle
      else Ll_attack.Split_attack.run ?config ~n locked.circuit ~oracle
    in
    let composed = Ll_attack.Compose.of_attack locked.circuit attack in
    let broke =
      match composed with
      | None -> false
      | Some c -> (
          match Ll_attack.Equiv.check original c with
          | Ll_attack.Equiv.Equivalent -> true
          | Ll_attack.Equiv.Counterexample _ -> false)
    in
    (attack, composed, broke)
end
