(** Exporters for {!Telemetry.snapshot}.

    Three formats cover the three consumers: Chrome [trace_event] JSON for
    humans (load in {{:https://ui.perfetto.dev}Perfetto} or
    [about:tracing]), JSONL for scripts, and a text summary for terminals
    and the CLI's [--metrics] flag.  File writers go through
    {!Ll_util.Fileio.write_atomic}, so an interrupted run never leaves a
    truncated artifact. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val chrome_trace : Buffer.t -> Telemetry.snapshot -> unit
(** One JSON object: [{"traceEvents": [...], "displayTimeUnit": ...,
    "otherData": {counters, gauges, drop counts}}].  Span B/E pairs become
    [ph:"B"]/[ph:"E"] events; instants and log lines [ph:"i"].  Each
    telemetry domain is a separate named track ([tid]). *)

val chrome_trace_string : Telemetry.snapshot -> string

val write_chrome_trace : string -> Telemetry.snapshot -> unit
(** Atomic write of {!chrome_trace_string} to a path. *)

val jsonl : Buffer.t -> Telemetry.snapshot -> unit
(** One JSON object per line: a [meta] header, then [counter] / [gauge] /
    [histogram] lines, then every [event]. *)

val jsonl_string : Telemetry.snapshot -> string

val write_jsonl : string -> Telemetry.snapshot -> unit

val summary : Telemetry.snapshot -> string
(** Compact human-readable rollup: counters, gauges, histogram means and
    approximate quantiles, and per-name span totals. *)
