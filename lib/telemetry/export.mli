(** Exporters for {!Telemetry.snapshot}.

    Three formats cover the three consumers: Chrome [trace_event] JSON for
    humans (load in {{:https://ui.perfetto.dev}Perfetto} or
    [about:tracing]), JSONL for scripts, and a text summary for terminals
    and the CLI's [--metrics] flag.  File writers go through
    {!Ll_util.Fileio.write_atomic}, so an interrupted run never leaves a
    truncated artifact. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val chrome_trace : Buffer.t -> Telemetry.snapshot -> unit
(** One JSON object: [{"traceEvents": [...], "displayTimeUnit": ...,
    "otherData": {counters, gauges, drop counts}}].  Span B/E pairs become
    [ph:"B"]/[ph:"E"] events; instants and log lines [ph:"i"].  Each
    telemetry domain is a separate named track ([tid]). *)

val chrome_trace_string : Telemetry.snapshot -> string

val write_chrome_trace : string -> Telemetry.snapshot -> unit
(** Atomic write of {!chrome_trace_string} to a path. *)

val jsonl : Buffer.t -> Telemetry.snapshot -> unit
(** One JSON object per line: a [meta] header, then [counter] / [gauge] /
    [histogram] lines, then every [event]. *)

val jsonl_string : Telemetry.snapshot -> string

val write_jsonl : string -> Telemetry.snapshot -> unit

(** {1 Prometheus text exposition}

    The scrape format ({e text/plain; version=0.0.4}): [# TYPE] comment
    then samples, histograms with cumulative [le]-labelled buckets plus
    [_sum]/[_count].  Metric names are sanitized ([attack.dips] becomes
    [ll_attack_dips]). *)

val prom_name : string -> string

val prometheus : Buffer.t -> Telemetry.snapshot -> unit

val prometheus_string : Telemetry.snapshot -> string

val write_prometheus : string -> Telemetry.snapshot -> unit
(** Atomic write — a scraper watching the path never sees a torn file. *)

(** {1 Live JSONL stream records}

    The line protocol of the CLI's [--stream] mode (and the future
    [logiclockd] event feed): one [meta] line, then one [delta] line per
    {!Live} sample; the attack layer appends [progress] lines.
    {!Trace_check.validate_stream} validates a captured stream. *)

val stream_meta_line : ?interval_s:float -> unit -> string

val stream_delta_line : Live.sample -> string

val drop_warning : Telemetry.snapshot -> string option
(** A one-line warning naming the domains that lost ring events, or
    [None] when [dropped_events = 0]. *)

val summary : Telemetry.snapshot -> string
(** Compact human-readable rollup: counters, gauges, histogram means and
    approximate quantiles, and per-name span totals. *)
