(* Minimal JSON parser + structural validation of Chrome trace files.
   Deliberately dependency-free: this backs the trace-smoke CI alias, so
   it must build with the stock toolchain. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "at %d: expected %c, got %c" c.pos ch x
  | None -> parse_error "at %d: expected %c, got end of input" c.pos ch

let expect_lit c lit v =
  let n = String.length lit in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = lit then begin
    c.pos <- c.pos + n;
    v
  end
  else parse_error "at %d: expected %s" c.pos lit

let parse_string_body c =
  (* [c] sits just past the opening quote. *)
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string at %d" c.pos
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
      | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
      | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
      | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
      | Some '"' -> advance c; Buffer.add_char b '"'; go ()
      | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
      | Some '/' -> advance c; Buffer.add_char b '/'; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then parse_error "bad \\u escape at %d" c.pos;
        let hex = String.sub c.src c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> parse_error "bad \\u escape at %d" c.pos
        in
        c.pos <- c.pos + 4;
        (* Re-encode as UTF-8; surrogate pairs are not needed for our
           own traces but handle the BMP properly. *)
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> parse_error "bad escape at %d" c.pos)
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> parse_error "bad number %S at %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input at %d" c.pos
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        expect c '"';
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((key, v) :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev ((key, v) :: acc))
        | _ -> parse_error "at %d: expected , or } in object" c.pos
      in
      members []
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elems (v :: acc)
        | Some ']' ->
          advance c;
          Arr (List.rev (v :: acc))
        | _ -> parse_error "at %d: expected , or ] in array" c.pos
      in
      elems []
    end
  | Some '"' ->
    advance c;
    Str (parse_string_body c)
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some 'n' -> expect_lit c "null" Null
  | Some _ -> parse_number c

let parse_json s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then parse_error "trailing garbage at %d" c.pos;
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function Some (Str s) -> Some s | _ -> None

let to_num_opt = function Some (Num f) -> Some f | _ -> None

(* ------------------------------------------------------------------ *)
(* Chrome trace validation                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  total_events : int;
  begin_events : int;
  end_events : int;
  instant_events : int;
  meta_events : int;
  tracks : int;
  max_depth : int;
  errors : string list;
}

let validate_chrome_trace contents =
  match parse_json contents with
  | exception Parse_error msg -> Error [ Printf.sprintf "JSON parse error: %s" msg ]
  | json -> (
    match member "traceEvents" json with
    | Some (Arr events) ->
      let errors = ref [] in
      let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
      let begins = ref 0 and ends = ref 0 and instants = ref 0 and metas = ref 0 in
      (* Per-tid span stack of (name, ts); events within a tid must arrive
         time-ordered and properly nested. *)
      let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
      let last_ts : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
      let max_depth = ref 0 in
      List.iteri
        (fun i ev ->
          match member "ph" ev |> to_string_opt with
          | None -> err "event %d: missing ph" i
          | Some "M" -> incr metas
          | Some ph -> (
            let tid =
              match member "tid" ev |> to_num_opt with
              | Some t -> int_of_float t
              | None ->
                err "event %d: missing tid" i;
                -1
            in
            let ts =
              match member "ts" ev |> to_num_opt with
              | Some t -> t
              | None ->
                err "event %d: missing ts" i;
                0.0
            in
            let name =
              match member "name" ev |> to_string_opt with
              | Some n -> n
              | None ->
                err "event %d: missing name" i;
                "?"
            in
            (match Hashtbl.find_opt last_ts tid with
            | Some prev ->
              if ts < !prev then err "event %d (tid %d): timestamp regressed" i tid;
              prev := ts
            | None -> Hashtbl.add last_ts tid (ref ts));
            let stack =
              match Hashtbl.find_opt stacks tid with
              | Some s -> s
              | None ->
                let s = ref [] in
                Hashtbl.add stacks tid s;
                s
            in
            match ph with
            | "B" ->
              incr begins;
              stack := (name, ts) :: !stack;
              if List.length !stack > !max_depth then max_depth := List.length !stack
            | "E" -> (
              incr ends;
              match !stack with
              | [] -> err "event %d (tid %d): E %S with empty span stack" i tid name
              | (top, _) :: rest ->
                if top <> name then
                  err "event %d (tid %d): E %S does not match open span %S" i tid name top;
                stack := rest)
            | "i" | "I" -> incr instants
            | other -> err "event %d: unknown ph %S" i other))
        events;
      Hashtbl.iter
        (fun tid stack ->
          List.iter (fun (name, _) -> err "tid %d: span %S never closed" tid name) !stack)
        stacks;
      let report =
        {
          total_events = List.length events;
          begin_events = !begins;
          end_events = !ends;
          instant_events = !instants;
          meta_events = !metas;
          tracks = Hashtbl.length stacks;
          max_depth = !max_depth;
          errors = List.rev !errors;
        }
      in
      if report.errors = [] then Ok report else Error report.errors
    | Some _ -> Error [ "traceEvents is not an array" ]
    | None -> Error [ "missing traceEvents" ])

let validate_chrome_trace_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  validate_chrome_trace contents

(* ------------------------------------------------------------------ *)
(* Live JSONL stream validation                                        *)
(* ------------------------------------------------------------------ *)

type stream_report = {
  sr_lines : int;
  sr_meta : int;
  sr_deltas : int;
  sr_progress : int;
  sr_errors : string list;
}

(* A captured [--stream] feed: one JSON object per line.  The first line
   must be a [meta] record; [delta] lines carry strictly increasing
   [seq] and strictly increasing monotonic [t_ns]; [progress] lines
   carry non-decreasing [t_ns] and non-decreasing [dips].  Anything
   malformed, unknown, or time-travelling is an error. *)
let validate_stream contents =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let metas = ref 0 and deltas = ref 0 and progresses = ref 0 and lines = ref 0 in
  let last_seq = ref 0 in
  let last_delta_t = ref min_int in
  let last_progress_t = ref min_int in
  let last_dips = ref 0 in
  let require_num line_no obj key =
    match member key obj |> to_num_opt with
    | Some v -> v
    | None ->
      err "line %d: missing numeric field %S" line_no key;
      0.0
  in
  let handle line_no line =
    match parse_json line with
    | exception Parse_error msg -> err "line %d: JSON parse error: %s" line_no msg
    | obj -> (
      match member "type" obj |> to_string_opt with
      | None -> err "line %d: missing type" line_no
      | Some "meta" ->
        incr metas;
        if !lines > 1 then err "line %d: meta record not first" line_no;
        ignore (require_num line_no obj "version");
        ignore (require_num line_no obj "t_ns")
      | Some "delta" ->
        incr deltas;
        let seq = int_of_float (require_num line_no obj "seq") in
        let t_ns = int_of_float (require_num line_no obj "t_ns") in
        ignore (require_num line_no obj "dt_s");
        (match member "counters" obj with
        | Some (Obj _) -> ()
        | _ -> err "line %d: delta missing counters object" line_no);
        if seq <= !last_seq then
          err "line %d: delta seq %d not increasing (prev %d)" line_no seq !last_seq;
        if t_ns <= !last_delta_t && !last_delta_t <> min_int then
          err "line %d: delta t_ns regressed" line_no;
        last_seq := seq;
        last_delta_t := t_ns
      | Some "progress" ->
        incr progresses;
        let t_ns = int_of_float (require_num line_no obj "t_ns") in
        let dips = int_of_float (require_num line_no obj "dips") in
        if t_ns < !last_progress_t then err "line %d: progress t_ns regressed" line_no;
        if dips < !last_dips then
          err "line %d: progress dips regressed (%d after %d)" line_no dips !last_dips;
        last_progress_t := t_ns;
        last_dips := dips
      | Some other -> err "line %d: unknown stream record type %S" line_no other)
  in
  String.split_on_char '\n' contents
  |> List.iter (fun line ->
         if String.trim line <> "" then begin
           incr lines;
           handle !lines line
         end);
  if !lines = 0 then err "empty stream";
  if !metas = 0 then err "no meta record"
  else if !metas > 1 then err "%d meta records (expected 1)" !metas;
  let report =
    {
      sr_lines = !lines;
      sr_meta = !metas;
      sr_deltas = !deltas;
      sr_progress = !progresses;
      sr_errors = List.rev !errors;
    }
  in
  if report.sr_errors = [] then Ok report else Error report.sr_errors

let validate_stream_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  validate_stream contents
