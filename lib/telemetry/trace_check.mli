(** Structural validation of Chrome [trace_event] JSON files.

    Backs the [trace-smoke] CI alias: parses the trace produced by
    {!Export.write_chrome_trace} with a small built-in JSON parser and
    checks that per-track span events are balanced, matched by name, and
    time-ordered. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val parse_json : string -> json
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> json -> json option

type report = {
  total_events : int;
  begin_events : int;
  end_events : int;
  instant_events : int;
  meta_events : int;
  tracks : int;  (** distinct [tid]s carrying non-metadata events *)
  max_depth : int;  (** deepest span nesting observed on any track *)
  errors : string list;
}

val validate_chrome_trace : string -> (report, string list) result
(** Checks, per [tid]: every [E] matches the innermost open [B] by name,
    no [E] on an empty stack, no unclosed span at the end, and timestamps
    are monotone.  [Error] lists every violation (or the parse error). *)

val validate_chrome_trace_file : string -> (report, string list) result

(** {1 Live stream validation}

    The line protocol of the CLI's [--stream] mode: a [meta] record
    first, then [delta] records (from {!Export.stream_delta_line}) and
    [progress] records (from the attack layer). *)

type stream_report = {
  sr_lines : int;  (** non-empty lines *)
  sr_meta : int;
  sr_deltas : int;
  sr_progress : int;
  sr_errors : string list;
}

val validate_stream : string -> (stream_report, string list) result
(** Checks: every line parses as a JSON object of a known record type,
    exactly one [meta] record and it comes first, [delta] [seq]/[t_ns]
    strictly increase, [progress] [t_ns] and [dips] never regress. *)

val validate_stream_file : string -> (stream_report, string list) result
