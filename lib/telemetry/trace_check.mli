(** Structural validation of Chrome [trace_event] JSON files.

    Backs the [trace-smoke] CI alias: parses the trace produced by
    {!Export.write_chrome_trace} with a small built-in JSON parser and
    checks that per-track span events are balanced, matched by name, and
    time-ordered. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val parse_json : string -> json
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> json -> json option

type report = {
  total_events : int;
  begin_events : int;
  end_events : int;
  instant_events : int;
  meta_events : int;
  tracks : int;  (** distinct [tid]s carrying non-metadata events *)
  max_depth : int;  (** deepest span nesting observed on any track *)
  errors : string list;
}

val validate_chrome_trace : string -> (report, string list) result
(** Checks, per [tid]: every [E] matches the innermost open [B] by name,
    no [E] on an empty stack, no unclosed span at the end, and timestamps
    are monotone.  [Error] lists every violation (or the parse error). *)

val validate_chrome_trace_file : string -> (report, string list) result
