module Timer = Ll_util.Timer

(* ------------------------------------------------------------------ *)
(* Global switches                                                     *)
(* ------------------------------------------------------------------ *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let default_ring_capacity = 32768

(* Capacity picked up by domain states created after [enable]. *)
let ring_capacity = Atomic.make default_ring_capacity

let now_ns = Timer.monotonic_ns

(* ------------------------------------------------------------------ *)
(* Event records                                                       *)
(* ------------------------------------------------------------------ *)

let kind_begin = 0

let kind_end = 1

let kind_instant = 2

let kind_log = 3

(* Ring slots are preallocated mutable records: recording an event in
   steady state overwrites fields and allocates nothing (beyond strings
   the caller already built). *)
type ev = {
  mutable ev_kind : int;
  mutable ev_name : string;
  mutable ev_ts : int;  (* monotonic ns *)
  mutable ev_a0 : int;
  mutable ev_a1 : int;
  mutable ev_note : string;
}

let fresh_ev () =
  { ev_kind = kind_instant; ev_name = ""; ev_ts = 0; ev_a0 = 0; ev_a1 = 0; ev_note = "" }

(* ------------------------------------------------------------------ *)
(* Metric registry (global, name-interned)                             *)
(* ------------------------------------------------------------------ *)

type mkind = K_counter | K_gauge | K_hist of float array

type counter = int

type gauge = int

type histogram = int

let registry_lock = Mutex.create ()

let metric_ids : (string, int) Hashtbl.t = Hashtbl.create 64

let metric_names : string array ref = ref [||]

let metric_kinds : mkind array ref = ref [||]

let num_metrics = Atomic.make 0

let default_time_buckets =
  [| 1e-6; 1e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 100.0 |]

let register_metric name kind =
  Mutex.lock registry_lock;
  let id =
    match Hashtbl.find_opt metric_ids name with
    | Some id ->
        (* Re-registration must agree on the kind; buckets are fixed by
           the first registration. *)
        (match ((!metric_kinds).(id), kind) with
        | K_counter, K_counter | K_gauge, K_gauge | K_hist _, K_hist _ -> ()
        | _ -> invalid_arg ("Telemetry: metric " ^ name ^ " re-registered with another kind"));
        id
    | None ->
        let id = Atomic.get num_metrics in
        let push a x = Array.append a [| x |] in
        metric_names := push !metric_names name;
        metric_kinds := push !metric_kinds kind;
        Hashtbl.add metric_ids name id;
        Atomic.set num_metrics (id + 1);
        id
  in
  Mutex.unlock registry_lock;
  id

(* Global sequence for gauge merge order: the last [set] across all
   domains wins in a snapshot. *)
let gauge_seq = Atomic.make 1

(* ------------------------------------------------------------------ *)
(* Per-domain state                                                    *)
(* ------------------------------------------------------------------ *)

type state = {
  tid : int;  (* dense telemetry track id, assigned at registration *)
  mutable ring : ev array;
  mutable head : int;  (* total events ever written; slot = head mod capacity *)
  (* span stack *)
  mutable sp_name : string array;
  mutable sp_t0 : int array;
  mutable sp_a0 : int array;
  mutable sp_depth : int;
  mutable unbalanced : int;
  (* metric values, indexed by metric id (grown on demand) *)
  mutable counters : int array;
  mutable gauges : float array;
  mutable gauge_seqs : int array;
  mutable hist_counts : int array array;
  mutable hist_sums : float array;
  mutable hist_ns : int array;
  (* innermost-first log sinks (per-domain, so no cross-domain races) *)
  mutable sinks : (string -> unit) list;
}

let all_states : state list ref = ref []

let next_tid = ref 0

let new_state () =
  let cap = Atomic.get ring_capacity in
  Mutex.lock registry_lock;
  let tid = !next_tid in
  incr next_tid;
  let st =
    {
      tid;
      ring = Array.init cap (fun _ -> fresh_ev ());
      head = 0;
      sp_name = Array.make 64 "";
      sp_t0 = Array.make 64 0;
      sp_a0 = Array.make 64 0;
      sp_depth = 0;
      unbalanced = 0;
      counters = [||];
      gauges = [||];
      gauge_seqs = [||];
      hist_counts = [||];
      hist_sums = [||];
      hist_ns = [||];
      sinks = [];
    }
  in
  all_states := st :: !all_states;
  Mutex.unlock registry_lock;
  st

let dls_key : state Domain.DLS.key = Domain.DLS.new_key new_state

let state () = Domain.DLS.get dls_key

(* ------------------------------------------------------------------ *)
(* Event recording (single writer: the owning domain)                  *)
(* ------------------------------------------------------------------ *)

let record st kind name ts a0 a1 note =
  let cap = Array.length st.ring in
  let e = st.ring.(st.head mod cap) in
  e.ev_kind <- kind;
  e.ev_name <- name;
  e.ev_ts <- ts;
  e.ev_a0 <- a0;
  e.ev_a1 <- a1;
  e.ev_note <- note;
  st.head <- st.head + 1

let instant ?(a0 = 0) ?(a1 = 0) ?(note = "") name =
  if enabled () then record (state ()) kind_instant name (now_ns ()) a0 a1 note

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let grow_stack st =
  let n = Array.length st.sp_name in
  let g a fill =
    let fresh = Array.make (2 * n) fill in
    Array.blit a 0 fresh 0 n;
    fresh
  in
  st.sp_name <- g st.sp_name "";
  st.sp_t0 <- g st.sp_t0 0;
  st.sp_a0 <- g st.sp_a0 0

let span_begin ?(a0 = 0) ?(a1 = 0) ?(note = "") name =
  if enabled () then begin
    let st = state () in
    if st.sp_depth >= Array.length st.sp_name then grow_stack st;
    let t0 = now_ns () in
    st.sp_name.(st.sp_depth) <- name;
    st.sp_t0.(st.sp_depth) <- t0;
    st.sp_a0.(st.sp_depth) <- a0;
    st.sp_depth <- st.sp_depth + 1;
    record st kind_begin name t0 a0 a1 note
  end

(* The E event carries the duration in [a0] and a result value in [a1]
   ([v], defaulting to the matching B's [a0]), so spans survive ring
   wraparound of their B event and exporters never need to re-match. *)
let span_end ?v ?(note = "") () =
  if enabled () then begin
    let st = state () in
    if st.sp_depth = 0 then st.unbalanced <- st.unbalanced + 1
    else begin
      st.sp_depth <- st.sp_depth - 1;
      let d = st.sp_depth in
      let t1 = now_ns () in
      let value = match v with Some x -> x | None -> st.sp_a0.(d) in
      record st kind_end st.sp_name.(d) t1 (t1 - st.sp_t0.(d)) value note
    end
  end

let with_span ?a0 ?a1 ?note ?v name f =
  if enabled () then begin
    span_begin ?a0 ?a1 ?note name;
    match f () with
    | x ->
        span_end ?v ();
        x
    | exception e ->
        span_end ?v ~note:"exception" ();
        raise e
  end
  else f ()

(* Backdated span: both events written now, the B stamped [t0_ns].  Used
   where the span is only known when it ends (e.g. pool idle time around a
   condition-variable wait). *)
let timed_span ?(a0 = 0) ?(v = 0) ?(note = "") ~t0_ns name =
  if enabled () then begin
    let st = state () in
    let t1 = now_ns () in
    record st kind_begin name t0_ns a0 0 note;
    record st kind_end name t1 (t1 - t0_ns) v ""
  end

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let ensure_metrics st =
  let n = Atomic.get num_metrics in
  if Array.length st.counters < n then begin
    let g a fill =
      let fresh = Array.make n fill in
      Array.blit a 0 fresh 0 (Array.length a);
      fresh
    in
    st.counters <- g st.counters 0;
    st.gauges <- g st.gauges 0.0;
    st.gauge_seqs <- g st.gauge_seqs 0;
    st.hist_sums <- g st.hist_sums 0.0;
    st.hist_ns <- g st.hist_ns 0;
    let fresh = Array.make n [||] in
    Array.blit st.hist_counts 0 fresh 0 (Array.length st.hist_counts);
    st.hist_counts <- fresh
  end

module Metric = struct
  type nonrec counter = counter

  type nonrec gauge = gauge

  type nonrec histogram = histogram

  let counter name = register_metric name K_counter

  let gauge name = register_metric name K_gauge

  let histogram ?(buckets = default_time_buckets) name =
    register_metric name (K_hist (Array.copy buckets))

  let default_time_buckets = default_time_buckets

  let add c by =
    if enabled () then begin
      let st = state () in
      ensure_metrics st;
      st.counters.(c) <- st.counters.(c) + by
    end

  let incr c = add c 1

  let set g v =
    if enabled () then begin
      let st = state () in
      ensure_metrics st;
      st.gauges.(g) <- v;
      st.gauge_seqs.(g) <- Atomic.fetch_and_add gauge_seq 1
    end

  (* Bucket [i] counts observations [v <= buckets.(i)] (first matching
     bound); the extra final slot counts overflows. *)
  let observe h v =
    if enabled () then begin
      let st = state () in
      ensure_metrics st;
      let buckets =
        match (!metric_kinds).(h) with K_hist b -> b | _ -> invalid_arg "Telemetry.observe"
      in
      if Array.length st.hist_counts.(h) = 0 then
        st.hist_counts.(h) <- Array.make (Array.length buckets + 1) 0;
      let n = Array.length buckets in
      let i = ref 0 in
      while !i < n && v > buckets.(!i) do
        Stdlib.incr i
      done;
      let counts = st.hist_counts.(h) in
      counts.(!i) <- counts.(!i) + 1;
      st.hist_sums.(h) <- st.hist_sums.(h) +. v;
      st.hist_ns.(h) <- st.hist_ns.(h) + 1
    end
end

(* ------------------------------------------------------------------ *)
(* Event log: subscriber routing + per-task buffering                  *)
(* ------------------------------------------------------------------ *)

let log_active () =
  enabled () || (state ()).sinks <> []

let log_line line =
  let st = state () in
  (match st.sinks with sink :: _ -> sink line | [] -> ());
  if enabled () then record st kind_log "log" (now_ns ()) 0 0 line

let with_log_subscriber sink f =
  let st = state () in
  st.sinks <- sink :: st.sinks;
  Fun.protect
    ~finally:(fun () ->
      let st = state () in
      match st.sinks with _ :: rest -> st.sinks <- rest | [] -> ())
    f

module Log_buffer = struct
  type t = string list array

  let create n = Array.make n []

  let log buf i line = buf.(i) <- line :: buf.(i)

  let slot buf i = fun line -> log buf i line

  let flush buf callback =
    Array.iter (fun lines -> List.iter callback (List.rev lines)) buf
end

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

type event = {
  er_domain : int;
  er_kind : int;
  er_name : string;
  er_ts_ns : int;
  er_a0 : int;
  er_a1 : int;
  er_note : string;
}

type hist = { h_buckets : float array; h_counts : int array; h_count : int; h_sum : float }

type snapshot = {
  taken_at : float;  (* epoch, report timestamp *)
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
  events : event array;  (* merged across domains, ts-sorted *)
  domains : int;
  dropped_events : int;  (* overwritten by ring wraparound *)
  dropped_by_domain : (int * int) list;  (* (track id, drops), drops > 0 only *)
  unbalanced_span_ends : int;
}

type span = {
  sp_name : string;
  sp_domain : int;
  sp_start_ns : int;
  sp_dur_ns : int;
  sp_a0 : int;
  sp_a1 : int;
  sp_v : int;
  sp_depth : int;
  sp_note : string;
}

let snapshot () =
  Mutex.lock registry_lock;
  let states = !all_states in
  let names = !metric_names in
  let kinds = !metric_kinds in
  Mutex.unlock registry_lock;
  let n_metrics = Array.length names in
  let counters = Array.make n_metrics 0 in
  let gauges = Array.make n_metrics 0.0 in
  let gauge_best = Array.make n_metrics 0 in
  let hist_counts = Array.make n_metrics [||] in
  let hist_sums = Array.make n_metrics 0.0 in
  let hist_ns = Array.make n_metrics 0 in
  let events = ref [] in
  let dropped = ref 0 in
  let dropped_by = ref [] in
  let unbalanced = ref 0 in
  List.iter
    (fun st ->
      let cap = Array.length st.ring in
      let total = st.head in
      let first = max 0 (total - cap) in
      dropped := !dropped + first;
      if first > 0 then dropped_by := (st.tid, first) :: !dropped_by;
      unbalanced := !unbalanced + st.unbalanced;
      for i = first to total - 1 do
        let e = st.ring.(i mod cap) in
        events :=
          {
            er_domain = st.tid;
            er_kind = e.ev_kind;
            er_name = e.ev_name;
            er_ts_ns = e.ev_ts;
            er_a0 = e.ev_a0;
            er_a1 = e.ev_a1;
            er_note = e.ev_note;
          }
          :: !events
      done;
      let m = Array.length st.counters in
      for id = 0 to min m n_metrics - 1 do
        counters.(id) <- counters.(id) + st.counters.(id);
        if st.gauge_seqs.(id) > gauge_best.(id) then begin
          gauge_best.(id) <- st.gauge_seqs.(id);
          gauges.(id) <- st.gauges.(id)
        end;
        let hc = st.hist_counts.(id) in
        if Array.length hc > 0 then begin
          if Array.length hist_counts.(id) = 0 then
            hist_counts.(id) <- Array.make (Array.length hc) 0;
          Array.iteri (fun b c -> hist_counts.(id).(b) <- hist_counts.(id).(b) + c) hc;
          hist_sums.(id) <- hist_sums.(id) +. st.hist_sums.(id);
          hist_ns.(id) <- hist_ns.(id) + st.hist_ns.(id)
        end
      done)
    states;
  let events = Array.of_list !events in
  Array.sort (fun a b -> compare (a.er_ts_ns, a.er_domain) (b.er_ts_ns, b.er_domain)) events;
  let pick kind =
    let out = ref [] in
    for id = n_metrics - 1 downto 0 do
      match (kinds.(id), kind) with
      | K_counter, `C -> out := (names.(id), counters.(id)) :: !out
      | _ -> ()
    done;
    !out
  in
  let gauges_l =
    let out = ref [] in
    for id = Array.length names - 1 downto 0 do
      match kinds.(id) with
      | K_gauge -> if gauge_best.(id) > 0 then out := (names.(id), gauges.(id)) :: !out
      | _ -> ()
    done;
    !out
  in
  let hists_l =
    let out = ref [] in
    for id = Array.length names - 1 downto 0 do
      match kinds.(id) with
      | K_hist buckets ->
          if hist_ns.(id) > 0 then
            out :=
              ( names.(id),
                {
                  h_buckets = buckets;
                  h_counts = hist_counts.(id);
                  h_count = hist_ns.(id);
                  h_sum = hist_sums.(id);
                } )
              :: !out
      | _ -> ()
    done;
    !out
  in
  {
    taken_at = Timer.now ();
    counters = pick `C;
    gauges = gauges_l;
    histograms = hists_l;
    events;
    domains = List.length states;
    dropped_events = !dropped;
    dropped_by_domain = List.sort compare !dropped_by;
    unbalanced_span_ends = !unbalanced;
  }

(* Reconstruct spans from the event stream: per domain, B pushes and E
   pops (our spans are strictly nested per domain).  An E whose B was lost
   to ring wraparound still yields a span from its own (dur, v) payload at
   depth 0 with [sp_a0 = -1]. *)
let spans snap =
  let stacks = Hashtbl.create 8 in
  let out = ref [] in
  Array.iter
    (fun e ->
      if e.er_kind = kind_begin then begin
        let stack = try Hashtbl.find stacks e.er_domain with Not_found -> [] in
        Hashtbl.replace stacks e.er_domain (e :: stack)
      end
      else if e.er_kind = kind_end then begin
        let stack = try Hashtbl.find stacks e.er_domain with Not_found -> [] in
        match stack with
        | b :: rest when b.er_name = e.er_name ->
            Hashtbl.replace stacks e.er_domain rest;
            out :=
              {
                sp_name = e.er_name;
                sp_domain = e.er_domain;
                sp_start_ns = b.er_ts_ns;
                sp_dur_ns = e.er_a0;
                sp_a0 = b.er_a0;
                sp_a1 = b.er_a1;
                sp_v = e.er_a1;
                sp_depth = List.length rest;
                sp_note = b.er_note;
              }
              :: !out
        | _ ->
            out :=
              {
                sp_name = e.er_name;
                sp_domain = e.er_domain;
                sp_start_ns = e.er_ts_ns - e.er_a0;
                sp_dur_ns = e.er_a0;
                sp_a0 = -1;
                sp_a1 = 0;
                sp_v = e.er_a1;
                sp_depth = 0;
                sp_note = e.er_note;
              }
              :: !out
      end)
    snap.events;
  List.sort (fun a b -> compare (a.sp_start_ns, a.sp_domain) (b.sp_start_ns, b.sp_domain)) !out

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let clear_state st =
  let cap = Atomic.get ring_capacity in
  if Array.length st.ring <> cap then st.ring <- Array.init cap (fun _ -> fresh_ev ());
  st.head <- 0;
  st.sp_depth <- 0;
  st.unbalanced <- 0;
  Array.fill st.counters 0 (Array.length st.counters) 0;
  Array.fill st.gauges 0 (Array.length st.gauges) 0.0;
  Array.fill st.gauge_seqs 0 (Array.length st.gauge_seqs) 0;
  Array.fill st.hist_sums 0 (Array.length st.hist_sums) 0.0;
  Array.fill st.hist_ns 0 (Array.length st.hist_ns) 0;
  Array.iter (fun c -> Array.fill c 0 (Array.length c) 0) st.hist_counts

let reset () =
  Mutex.lock registry_lock;
  let states = !all_states in
  Mutex.unlock registry_lock;
  List.iter clear_state states

let enable ?ring_capacity:(cap = default_ring_capacity) () =
  Atomic.set ring_capacity cap;
  reset ();
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false
