module T = Telemetry

(* JSON string escaping (the OCaml %S escapes control characters in a
   non-JSON decimal form, so roll our own). *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us_of_ns ns = float_of_int ns /. 1e3

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON (Perfetto / about:tracing)                  *)
(* ------------------------------------------------------------------ *)

let chrome_trace buf (snap : T.snapshot) =
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf line
  in
  (* Track-naming metadata: one thread per telemetry domain. *)
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun (e : T.event) ->
      if not (Hashtbl.mem seen e.T.er_domain) then begin
        Hashtbl.add seen e.T.er_domain ();
        emit
          (Printf.sprintf
             "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
             e.T.er_domain e.T.er_domain)
      end)
    snap.T.events;
  Array.iter
    (fun (e : T.event) ->
      let common =
        Printf.sprintf "\"ts\":%.3f,\"pid\":1,\"tid\":%d" (us_of_ns e.T.er_ts_ns) e.T.er_domain
      in
      let note_field =
        if e.T.er_note = "" then "" else Printf.sprintf ",\"note\":\"%s\"" (json_escape e.T.er_note)
      in
      if e.T.er_kind = T.kind_begin then
        emit
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"ll\",\"ph\":\"B\",%s,\"args\":{\"a0\":%d,\"a1\":%d%s}}"
             (json_escape e.T.er_name) common e.T.er_a0 e.T.er_a1 note_field)
      else if e.T.er_kind = T.kind_end then
        emit
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"ll\",\"ph\":\"E\",%s,\"args\":{\"dur_ns\":%d,\"v\":%d}}"
             (json_escape e.T.er_name) common e.T.er_a0 e.T.er_a1)
      else if e.T.er_kind = T.kind_log then
        emit
          (Printf.sprintf
             "{\"name\":\"log\",\"cat\":\"ll\",\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{\"line\":\"%s\"}}"
             common (json_escape e.T.er_note))
      else
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"ll\",\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{\"a0\":%d,\"a1\":%d%s}}"
             (json_escape e.T.er_name) common e.T.er_a0 e.T.er_a1 note_field))
    snap.T.events;
  Buffer.add_string buf "\n],\n";
  Buffer.add_string buf "\"displayTimeUnit\":\"ms\",\n";
  Buffer.add_string buf "\"otherData\":{";
  Buffer.add_string buf (Printf.sprintf "\"taken_at\":%.3f" snap.T.taken_at);
  Buffer.add_string buf (Printf.sprintf ",\"domains\":%d" snap.T.domains);
  Buffer.add_string buf (Printf.sprintf ",\"dropped_events\":%d" snap.T.dropped_events);
  Buffer.add_string buf
    (Printf.sprintf ",\"unbalanced_span_ends\":%d" snap.T.unbalanced_span_ends);
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":%d" (json_escape name) v))
    snap.T.counters;
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":%.6g" (json_escape name) v))
    snap.T.gauges;
  Buffer.add_string buf "}}\n"

let chrome_trace_string snap =
  let buf = Buffer.create 65536 in
  chrome_trace buf snap;
  Buffer.contents buf

let write_chrome_trace path snap =
  Ll_util.Fileio.write_atomic_string path (chrome_trace_string snap)

(* ------------------------------------------------------------------ *)
(* Structured JSONL                                                    *)
(* ------------------------------------------------------------------ *)

let jsonl buf (snap : T.snapshot) =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line
    "{\"type\":\"meta\",\"taken_at\":%.3f,\"domains\":%d,\"events\":%d,\"dropped_events\":%d,\"unbalanced_span_ends\":%d}"
    snap.T.taken_at snap.T.domains (Array.length snap.T.events) snap.T.dropped_events
    snap.T.unbalanced_span_ends;
  List.iter
    (fun (name, v) -> line "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}" (json_escape name) v)
    snap.T.counters;
  List.iter
    (fun (name, v) -> line "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.6g}" (json_escape name) v)
    snap.T.gauges;
  List.iter
    (fun (name, (h : T.hist)) ->
      let floats a = String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.6g") a)) in
      let ints a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
      line
        "{\"type\":\"histogram\",\"name\":\"%s\",\"buckets\":[%s],\"counts\":[%s],\"count\":%d,\"sum\":%.6g}"
        (json_escape name) (floats h.T.h_buckets) (ints h.T.h_counts) h.T.h_count h.T.h_sum)
    snap.T.histograms;
  Array.iter
    (fun (e : T.event) ->
      let kind =
        if e.T.er_kind = T.kind_begin then "B"
        else if e.T.er_kind = T.kind_end then "E"
        else if e.T.er_kind = T.kind_log then "log"
        else "I"
      in
      line
        "{\"type\":\"event\",\"kind\":\"%s\",\"domain\":%d,\"ts_ns\":%d,\"name\":\"%s\",\"a0\":%d,\"a1\":%d,\"note\":\"%s\"}"
        kind e.T.er_domain e.T.er_ts_ns (json_escape e.T.er_name) e.T.er_a0 e.T.er_a1
        (json_escape e.T.er_note))
    snap.T.events

let jsonl_string snap =
  let buf = Buffer.create 65536 in
  jsonl buf snap;
  Buffer.contents buf

let write_jsonl path snap = Ll_util.Fileio.write_atomic_string path (jsonl_string snap)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition format                                   *)
(* ------------------------------------------------------------------ *)

(* Metric names use dots as namespace separators ("attack.dips"); the
   Prometheus grammar only allows [a-zA-Z0-9_:], so dots (and anything
   else exotic) become underscores under an "ll_" prefix. *)
let prom_name name =
  let b = Buffer.create (String.length name + 3) in
  Buffer.add_string b "ll_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

(* %h-style float rendering for Prometheus: plain decimal, no OCaml
   artifacts ("inf" must be "+Inf" in bucket labels but is fine as a
   value). *)
let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prometheus buf (snap : T.snapshot) =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, v) ->
      let p = prom_name name in
      line "# TYPE %s counter" p;
      line "%s %d" p v)
    snap.T.counters;
  List.iter
    (fun (name, v) ->
      let p = prom_name name in
      line "# TYPE %s gauge" p;
      line "%s %s" p (prom_float v))
    snap.T.gauges;
  List.iter
    (fun (name, (h : T.hist)) ->
      let p = prom_name name in
      line "# TYPE %s histogram" p;
      (* Native buckets count [v <= bound] per bucket; Prometheus buckets
         are cumulative. *)
      let acc = ref 0 in
      Array.iteri
        (fun i bound ->
          acc := !acc + h.T.h_counts.(i);
          line "%s_bucket{le=\"%s\"} %d" p (prom_float bound) !acc)
        h.T.h_buckets;
      line "%s_bucket{le=\"+Inf\"} %d" p h.T.h_count;
      line "%s_sum %s" p (prom_float h.T.h_sum);
      line "%s_count %d" p h.T.h_count)
    snap.T.histograms;
  line "# TYPE ll_telemetry_domains gauge";
  line "ll_telemetry_domains %d" snap.T.domains;
  line "# TYPE ll_telemetry_dropped_events gauge";
  line "ll_telemetry_dropped_events %d" snap.T.dropped_events

let prometheus_string snap =
  let buf = Buffer.create 8192 in
  prometheus buf snap;
  Buffer.contents buf

let write_prometheus path snap =
  Ll_util.Fileio.write_atomic_string path (prometheus_string snap)

(* ------------------------------------------------------------------ *)
(* Live JSONL stream records                                           *)
(* ------------------------------------------------------------------ *)

(* One "meta" line opens a stream, then one "delta" line per sample
   (plus "progress" lines contributed by the attack layer).  Validated
   by {!Trace_check.validate_stream}. *)
let stream_meta_line ?(interval_s = Live.default_interval_s) () =
  Printf.sprintf
    "{\"type\":\"meta\",\"stream\":\"ll_telemetry\",\"version\":1,\"interval_s\":%.6g,\"t_ns\":%d,\"taken_at\":%.3f}"
    interval_s (T.now_ns ()) (Ll_util.Timer.now ())

let stream_delta_line (s : Live.sample) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"type\":\"delta\",\"seq\":%d,\"t_ns\":%d,\"dt_s\":%.6g" s.Live.s_seq
       s.Live.s_t_ns s.Live.s_dt_s);
  Buffer.add_string buf ",\"counters\":{";
  let first = ref true in
  List.iter
    (fun (name, delta, rate) ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":[%d,%.6g]" (json_escape name) delta rate))
    s.Live.s_counters;
  Buffer.add_string buf "},\"gauges\":{";
  let first = ref true in
  List.iter
    (fun (name, v) ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%.6g" (json_escape name) v))
    s.Live.s_gauges;
  Buffer.add_string buf "},\"hist_deltas\":{";
  let first = ref true in
  List.iter
    (fun (name, dcount, dsum) ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":[%d,%.6g]" (json_escape name) dcount dsum))
    s.Live.s_hists;
  Buffer.add_string buf
    (Printf.sprintf "},\"dropped_delta\":%d,\"dropped_total\":%d}" s.Live.s_dropped_delta
       s.Live.s_snap.T.dropped_events);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Ring-drop warning                                                   *)
(* ------------------------------------------------------------------ *)

(* One human-readable line when a snapshot lost events to ring
   wraparound, naming the affected domains — printed to stderr by the
   CLI so drops are loud instead of buried in exported JSON. *)
let drop_warning (snap : T.snapshot) =
  if snap.T.dropped_events = 0 then None
  else
    let doms =
      String.concat ", "
        (List.map
           (fun (tid, n) -> Printf.sprintf "domain-%d: %d" tid n)
           snap.T.dropped_by_domain)
    in
    Some
      (Printf.sprintf
         "telemetry: %d trace event(s) dropped by ring wraparound (%s); re-run with a larger --trace-ring-size"
         snap.T.dropped_events doms)

(* ------------------------------------------------------------------ *)
(* Compact text summary                                                *)
(* ------------------------------------------------------------------ *)

let summary (snap : T.snapshot) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "telemetry summary (%d domain(s), %d event(s), %d dropped, %d unbalanced end(s))"
    snap.T.domains (Array.length snap.T.events) snap.T.dropped_events
    snap.T.unbalanced_span_ends;
  if snap.T.counters <> [] then begin
    line "counters:";
    List.iter (fun (name, v) -> line "  %-28s %12d" name v) snap.T.counters
  end;
  if snap.T.gauges <> [] then begin
    line "gauges:";
    List.iter (fun (name, v) -> line "  %-28s %12.6g" name v) snap.T.gauges
  end;
  if snap.T.histograms <> [] then begin
    line "histograms:";
    List.iter
      (fun (name, (h : T.hist)) ->
        let mean = if h.T.h_count > 0 then h.T.h_sum /. float_of_int h.T.h_count else 0.0 in
        (* Approximate quantile: the upper bound of the bucket where the
           cumulative count crosses q. *)
        let quantile q =
          let target = int_of_float (ceil (q *. float_of_int h.T.h_count)) in
          let acc = ref 0 and res = ref infinity in
          Array.iteri
            (fun i c ->
              if !acc < target then begin
                acc := !acc + c;
                if !acc >= target then
                  res :=
                    (if i < Array.length h.T.h_buckets then h.T.h_buckets.(i) else infinity)
              end)
            h.T.h_counts;
          !res
        in
        line "  %-28s n=%-8d mean=%-12.6g p50<=%-10.3g p90<=%-10.3g" name h.T.h_count mean
          (quantile 0.5) (quantile 0.9))
      snap.T.histograms
  end;
  (* Span rollup: totals by name. *)
  let spans = T.spans snap in
  if spans <> [] then begin
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (s : T.span) ->
        let count, total, mx =
          try Hashtbl.find tbl s.T.sp_name with Not_found -> (0, 0, 0)
        in
        Hashtbl.replace tbl s.T.sp_name
          (count + 1, total + s.T.sp_dur_ns, max mx s.T.sp_dur_ns))
      spans;
    let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl [] in
    let rows = List.sort (fun (_, (_, a, _)) (_, (_, b, _)) -> compare b a) rows in
    line "spans (by total time):";
    List.iter
      (fun (name, (count, total, mx)) ->
        line "  %-28s n=%-8d total=%10.3f s  max=%10.3f s" name count
          (float_of_int total *. 1e-9)
          (float_of_int mx *. 1e-9))
      rows
  end;
  Buffer.contents buf
