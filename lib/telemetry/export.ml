module T = Telemetry

(* JSON string escaping (the OCaml %S escapes control characters in a
   non-JSON decimal form, so roll our own). *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us_of_ns ns = float_of_int ns /. 1e3

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON (Perfetto / about:tracing)                  *)
(* ------------------------------------------------------------------ *)

let chrome_trace buf (snap : T.snapshot) =
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf line
  in
  (* Track-naming metadata: one thread per telemetry domain. *)
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun (e : T.event) ->
      if not (Hashtbl.mem seen e.T.er_domain) then begin
        Hashtbl.add seen e.T.er_domain ();
        emit
          (Printf.sprintf
             "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
             e.T.er_domain e.T.er_domain)
      end)
    snap.T.events;
  Array.iter
    (fun (e : T.event) ->
      let common =
        Printf.sprintf "\"ts\":%.3f,\"pid\":1,\"tid\":%d" (us_of_ns e.T.er_ts_ns) e.T.er_domain
      in
      let note_field =
        if e.T.er_note = "" then "" else Printf.sprintf ",\"note\":\"%s\"" (json_escape e.T.er_note)
      in
      if e.T.er_kind = T.kind_begin then
        emit
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"ll\",\"ph\":\"B\",%s,\"args\":{\"a0\":%d,\"a1\":%d%s}}"
             (json_escape e.T.er_name) common e.T.er_a0 e.T.er_a1 note_field)
      else if e.T.er_kind = T.kind_end then
        emit
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"ll\",\"ph\":\"E\",%s,\"args\":{\"dur_ns\":%d,\"v\":%d}}"
             (json_escape e.T.er_name) common e.T.er_a0 e.T.er_a1)
      else if e.T.er_kind = T.kind_log then
        emit
          (Printf.sprintf
             "{\"name\":\"log\",\"cat\":\"ll\",\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{\"line\":\"%s\"}}"
             common (json_escape e.T.er_note))
      else
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"ll\",\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{\"a0\":%d,\"a1\":%d%s}}"
             (json_escape e.T.er_name) common e.T.er_a0 e.T.er_a1 note_field))
    snap.T.events;
  Buffer.add_string buf "\n],\n";
  Buffer.add_string buf "\"displayTimeUnit\":\"ms\",\n";
  Buffer.add_string buf "\"otherData\":{";
  Buffer.add_string buf (Printf.sprintf "\"taken_at\":%.3f" snap.T.taken_at);
  Buffer.add_string buf (Printf.sprintf ",\"domains\":%d" snap.T.domains);
  Buffer.add_string buf (Printf.sprintf ",\"dropped_events\":%d" snap.T.dropped_events);
  Buffer.add_string buf
    (Printf.sprintf ",\"unbalanced_span_ends\":%d" snap.T.unbalanced_span_ends);
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":%d" (json_escape name) v))
    snap.T.counters;
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":%.6g" (json_escape name) v))
    snap.T.gauges;
  Buffer.add_string buf "}}\n"

let chrome_trace_string snap =
  let buf = Buffer.create 65536 in
  chrome_trace buf snap;
  Buffer.contents buf

let write_chrome_trace path snap =
  Ll_util.Fileio.write_atomic_string path (chrome_trace_string snap)

(* ------------------------------------------------------------------ *)
(* Structured JSONL                                                    *)
(* ------------------------------------------------------------------ *)

let jsonl buf (snap : T.snapshot) =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line
    "{\"type\":\"meta\",\"taken_at\":%.3f,\"domains\":%d,\"events\":%d,\"dropped_events\":%d,\"unbalanced_span_ends\":%d}"
    snap.T.taken_at snap.T.domains (Array.length snap.T.events) snap.T.dropped_events
    snap.T.unbalanced_span_ends;
  List.iter
    (fun (name, v) -> line "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}" (json_escape name) v)
    snap.T.counters;
  List.iter
    (fun (name, v) -> line "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.6g}" (json_escape name) v)
    snap.T.gauges;
  List.iter
    (fun (name, (h : T.hist)) ->
      let floats a = String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.6g") a)) in
      let ints a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
      line
        "{\"type\":\"histogram\",\"name\":\"%s\",\"buckets\":[%s],\"counts\":[%s],\"count\":%d,\"sum\":%.6g}"
        (json_escape name) (floats h.T.h_buckets) (ints h.T.h_counts) h.T.h_count h.T.h_sum)
    snap.T.histograms;
  Array.iter
    (fun (e : T.event) ->
      let kind =
        if e.T.er_kind = T.kind_begin then "B"
        else if e.T.er_kind = T.kind_end then "E"
        else if e.T.er_kind = T.kind_log then "log"
        else "I"
      in
      line
        "{\"type\":\"event\",\"kind\":\"%s\",\"domain\":%d,\"ts_ns\":%d,\"name\":\"%s\",\"a0\":%d,\"a1\":%d,\"note\":\"%s\"}"
        kind e.T.er_domain e.T.er_ts_ns (json_escape e.T.er_name) e.T.er_a0 e.T.er_a1
        (json_escape e.T.er_note))
    snap.T.events

let jsonl_string snap =
  let buf = Buffer.create 65536 in
  jsonl buf snap;
  Buffer.contents buf

let write_jsonl path snap = Ll_util.Fileio.write_atomic_string path (jsonl_string snap)

(* ------------------------------------------------------------------ *)
(* Compact text summary                                                *)
(* ------------------------------------------------------------------ *)

let summary (snap : T.snapshot) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "telemetry summary (%d domain(s), %d event(s), %d dropped, %d unbalanced end(s))"
    snap.T.domains (Array.length snap.T.events) snap.T.dropped_events
    snap.T.unbalanced_span_ends;
  if snap.T.counters <> [] then begin
    line "counters:";
    List.iter (fun (name, v) -> line "  %-28s %12d" name v) snap.T.counters
  end;
  if snap.T.gauges <> [] then begin
    line "gauges:";
    List.iter (fun (name, v) -> line "  %-28s %12.6g" name v) snap.T.gauges
  end;
  if snap.T.histograms <> [] then begin
    line "histograms:";
    List.iter
      (fun (name, (h : T.hist)) ->
        let mean = if h.T.h_count > 0 then h.T.h_sum /. float_of_int h.T.h_count else 0.0 in
        (* Approximate quantile: the upper bound of the bucket where the
           cumulative count crosses q. *)
        let quantile q =
          let target = int_of_float (ceil (q *. float_of_int h.T.h_count)) in
          let acc = ref 0 and res = ref infinity in
          Array.iteri
            (fun i c ->
              if !acc < target then begin
                acc := !acc + c;
                if !acc >= target then
                  res :=
                    (if i < Array.length h.T.h_buckets then h.T.h_buckets.(i) else infinity)
              end)
            h.T.h_counts;
          !res
        in
        line "  %-28s n=%-8d mean=%-12.6g p50<=%-10.3g p90<=%-10.3g" name h.T.h_count mean
          (quantile 0.5) (quantile 0.9))
      snap.T.histograms
  end;
  (* Span rollup: totals by name. *)
  let spans = T.spans snap in
  if spans <> [] then begin
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (s : T.span) ->
        let count, total, mx =
          try Hashtbl.find tbl s.T.sp_name with Not_found -> (0, 0, 0)
        in
        Hashtbl.replace tbl s.T.sp_name
          (count + 1, total + s.T.sp_dur_ns, max mx s.T.sp_dur_ns))
      spans;
    let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl [] in
    let rows = List.sort (fun (_, (_, a, _)) (_, (_, b, _)) -> compare b a) rows in
    line "spans (by total time):";
    List.iter
      (fun (name, (count, total, mx)) ->
        line "  %-28s n=%-8d total=%10.3f s  max=%10.3f s" name count
          (float_of_int total *. 1e-9)
          (float_of_int mx *. 1e-9))
      rows
  end;
  Buffer.contents buf
