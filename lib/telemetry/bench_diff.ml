(* Regression gate over BENCH_*.json artifacts.

   Compares a current emitter run against a committed baseline, record by
   record, field by field.  The field policy encodes what the repo's
   determinism guarantees actually promise:

   - booleans and strings are behavioural results (matches_serial,
     keys_match, composed verdicts) — they must be equal;
   - numeric fields whose name marks them as {e noisy} (wall times,
     rates, GC/allocation volumes, steal counts, trace volumes) are
     machine-load dependent — they pass within a symmetric ratio
     threshold or an absolute slack;
   - every other numeric field (DIP counts, rounds, conflicts,
     propagations, task counts) is deterministic for a fixed seed and
     build — it must be exactly equal, so a silent behaviour change in
     the solver or attack shows up as a diff failure;
   - arrays are per-iteration trajectories (task_iters_s, round_s) —
     ignored unless [compare_arrays] is set;
   - a field or record missing from the current run fails (an emitter
     regression); new fields and new records are fine (the schema check
     covers their documentation). *)

type config = {
  tol : float;  (* noisy fields: max(current,base)/min <= tol *)
  abs_tol : float;  (* noisy fields: |current - base| <= abs_tol always passes *)
  compare_arrays : bool;
  noisy : string list;  (* substring patterns marking noise-dominated fields *)
}

let default_noisy =
  [
    "wall";
    "per_s";
    "_per_";
    "seconds";
    "time";
    "steals";
    "gc_";
    "words";
    "heap";
    "collections";
    "trace_";
    "dropped";
    "speedup";
    "_vs_";
    "ratio";
    "rate";
    "best_fixed";
    "idle";
    "taken_at";
  ]

let default_config =
  { tol = 10.0; abs_tol = 64.0; compare_arrays = false; noisy = default_noisy }

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

(* Time-like fields also end in "_s" ("serial_wall_s", "task_min_s"); a
   suffix test keeps that pattern from swallowing names like "fixed_ns". *)
let ends_with s suffix =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let noisy_field config name =
  ends_with name "_s" || List.exists (fun p -> contains_sub name p) config.noisy

type outcome = {
  records_compared : int;
  fields_compared : int;
  failures : string list;  (* empty = gate passes *)
}

let pass outcome = outcome.failures = []

module J = Trace_check

(* Records are matched by identity fields, not position, so reordering or
   appending records never breaks a baseline. *)
let record_key r =
  let part key =
    match J.member key r with
    | Some (J.Str s) -> Some s
    | Some (J.Num n) -> Some (Printf.sprintf "%g" n)
    | _ -> None
  in
  String.concat "|"
    (List.filter_map part [ "name"; "kind"; "section"; "workload"; "n" ])

let records_of = function
  | J.Arr rs -> rs
  | (J.Obj _ as r) -> [ r ]
  | _ -> []

let num_ok config ~noisy a b =
  a = b
  || noisy
     && (Float.abs (a -. b) <= config.abs_tol
        || a > 0.0
           && b > 0.0
           && Float.max a b /. Float.min a b <= config.tol)

let diff ?(config = default_config) ~baseline ~current () =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let fields = ref 0 in
  let records = ref 0 in
  let compare_value key where bval cval =
    incr fields;
    match (bval, cval) with
    | J.Bool a, J.Bool b ->
      if a <> b then fail "%s.%s: %b -> %b" where key a b
    | J.Str a, J.Str b -> if a <> b then fail "%s.%s: %S -> %S" where key a b
    | J.Num a, J.Num b ->
      let noisy = noisy_field config key in
      if not (num_ok config ~noisy a b) then
        if noisy then
          fail "%s.%s: %g -> %g (beyond x%g / +-%g noise)" where key a b config.tol
            config.abs_tol
        else fail "%s.%s: %g -> %g (deterministic field)" where key a b
    | J.Arr a, J.Arr b ->
      if config.compare_arrays then begin
        if List.length a <> List.length b then
          fail "%s.%s: array length %d -> %d" where key (List.length a) (List.length b)
      end
    | J.Null, J.Null -> ()
    | _ -> fail "%s.%s: type changed" where key
  in
  let compare_record key b c =
    incr records;
    match b with
    | J.Obj bfields ->
      List.iter
        (fun (fkey, bval) ->
          match J.member fkey c with
          | Some cval -> compare_value fkey key bval cval
          | None -> fail "%s.%s: field missing from current run" key fkey)
        bfields
    | _ -> fail "%s: baseline record is not an object" key
  in
  let currents = records_of current in
  List.iter
    (fun b ->
      let key = record_key b in
      match List.find_opt (fun c -> record_key c = key) currents with
      | Some c -> compare_record key b c
      | None -> fail "%s: record missing from current run" key)
    (records_of baseline);
  { records_compared = !records; fields_compared = !fields; failures = List.rev !failures }

let diff_strings ?config ~baseline ~current () =
  match (J.parse_json baseline, J.parse_json current) with
  | b, c -> diff ?config ~baseline:b ~current:c ()
  | exception J.Parse_error msg ->
    { records_compared = 0; fields_compared = 0; failures = [ "JSON parse error: " ^ msg ] }

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  contents

let diff_files ?config ~baseline ~current () =
  match (read_file baseline, read_file current) with
  | b, c -> diff_strings ?config ~baseline:b ~current:c ()
  | exception Sys_error msg ->
    { records_compared = 0; fields_compared = 0; failures = [ msg ] }

let summary outcome =
  if pass outcome then
    Printf.sprintf "bench_diff: OK (%d record(s), %d field(s) compared)"
      outcome.records_compared outcome.fields_compared
  else
    Printf.sprintf "bench_diff: %d failure(s) over %d record(s):\n%s"
      (List.length outcome.failures) outcome.records_compared
      (String.concat "\n" (List.map (fun f -> "  " ^ f) outcome.failures))
