(** Low-overhead, domain-safe observability for the attack stack.

    Three instrument families share one per-domain event substrate:

    - {b Spans} — hierarchical begin/end intervals with monotonic
      timestamps ({!Ll_util.Timer.monotonic_ns}).  Strictly nested per
      domain; {!span_end} on an empty stack is counted, never raised.
    - {b Metrics} — named counters, gauges and fixed-bucket histograms,
      aggregated per domain and merged at {!snapshot} (counters and
      histogram buckets sum; the last gauge [set] across all domains
      wins).
    - {b Event trace} — every span boundary, instant and log line lands in
      a per-domain ring buffer.  Each ring has a single writer (its
      domain), so recording takes no lock; wraparound overwrites the
      oldest events and is reported as [dropped_events].

    {b Overhead.} When disabled (the default) every operation is one
    atomic-flag load and a branch — no clock read, no allocation, no
    domain-local-storage access.  Instrumented code must not change
    behaviour based on telemetry: the serial/parallel byte-identical
    determinism guarantees and pinned golden DIP sequences hold with
    tracing on or off.

    {b Quiescence.} {!snapshot} and {!reset} read or clear other domains'
    states without synchronizing with their writers; call them while
    instrumented work is quiescent (e.g. after joining pool tasks) for
    exact numbers. *)

val enabled : unit -> bool

val enable : ?ring_capacity:int -> unit -> unit
(** Clears all recorded data ({!reset}) and turns collection on.
    [ring_capacity] (default 32768) sizes each domain's event ring. *)

val disable : unit -> unit
(** Turns collection off; recorded data stays readable via {!snapshot}. *)

val reset : unit -> unit
(** Clears events, metric values, span stacks and drop counters on every
    domain.  The metric registry (names, bucket layouts) is preserved. *)

val now_ns : unit -> int
(** The telemetry clock: monotonic nanoseconds. *)

(** {1 Spans and instants} *)

val span_begin : ?a0:int -> ?a1:int -> ?note:string -> string -> unit
(** Open a span on the calling domain.  [a0]/[a1] are free integer
    arguments (e.g. DIP index, cone size); [note] a free string tag. *)

val span_end : ?v:int -> ?note:string -> unit -> unit
(** Close the innermost span.  [v] (default: the span's [a0]) is the
    span's result value — its E event carries [(duration_ns, v)], so a
    span survives ring wraparound of its B event.  On an empty stack the
    call is a counted no-op ([unbalanced_span_ends]). *)

val with_span : ?a0:int -> ?a1:int -> ?note:string -> ?v:int -> string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] in a span (closed on exception too). *)

val timed_span : ?a0:int -> ?v:int -> ?note:string -> t0_ns:int -> string -> unit
(** Emit a complete span after the fact, backdating its begin to [t0_ns]
    (e.g. idle time measured around a condition-variable wait). *)

val instant : ?a0:int -> ?a1:int -> ?note:string -> string -> unit
(** A zero-duration event (e.g. a steal, a restart). *)

(** {1 Metrics} *)

module Metric : sig
  type counter

  type gauge

  type histogram

  val counter : string -> counter
  (** Intern a counter by name (idempotent; callable at module init,
      independent of {!enabled}). *)

  val gauge : string -> gauge

  val histogram : ?buckets:float array -> string -> histogram
  (** [buckets] are increasing upper bounds; observation [v] lands in the
      first bucket with [v <= bound], or in the implicit overflow bucket.
      Default: {!default_time_buckets}.  The first registration of a name
      fixes its bucket layout. *)

  val default_time_buckets : float array
  (** Log-spaced seconds from 1µs to 100s. *)

  val add : counter -> int -> unit

  val incr : counter -> unit

  val set : gauge -> float -> unit

  val observe : histogram -> float -> unit
end

(** {1 Event log}

    The per-iteration [log] callbacks of the attack configs route through
    here: the attack emits {!log_line}; a caller-supplied callback is a
    {e subscriber} installed for the dynamic extent of the attack on its
    domain ({!with_log_subscriber}).  Lines are delivered to the innermost
    subscriber of the calling domain and, when enabled, recorded in the
    event trace. *)

val log_active : unit -> bool
(** True when a line would go somewhere (subscriber installed on this
    domain, or telemetry enabled) — guard line formatting with this. *)

val log_line : string -> unit

val with_log_subscriber : (string -> unit) -> (unit -> 'a) -> 'a

(** Per-task line buffering shared by the parallel attack runners: each
    task owns one slot (no lock needed), and [flush] replays the lines
    through the real callback in task order after the join. *)
module Log_buffer : sig
  type t

  val create : int -> t

  val log : t -> int -> string -> unit

  val slot : t -> int -> string -> unit
  (** [slot buf i] is [log buf i] partially applied — a ready-made
      subscriber or [config.log] callback for task [i]. *)

  val flush : t -> (string -> unit) -> unit
end

(** {1 Snapshot} *)

type event = {
  er_domain : int;  (** telemetry track id (dense, one per domain seen) *)
  er_kind : int;  (** 0 begin, 1 end, 2 instant, 3 log *)
  er_name : string;
  er_ts_ns : int;
  er_a0 : int;  (** for end events: duration in ns *)
  er_a1 : int;  (** for end events: the span's result value [v] *)
  er_note : string;
}

type hist = {
  h_buckets : float array;
  h_counts : int array;  (** length = buckets + 1 (overflow last) *)
  h_count : int;
  h_sum : float;
}

type snapshot = {
  taken_at : float;  (** Unix epoch — the one wall-clock timestamp *)
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
  events : event array;  (** merged across domains, time-sorted *)
  domains : int;
  dropped_events : int;
  dropped_by_domain : (int * int) list;
      (** per-track drop counts, [(track id, drops)] with [drops > 0],
          sorted by track id — the detail behind [dropped_events] *)
  unbalanced_span_ends : int;
}

val snapshot : unit -> snapshot

type span = {
  sp_name : string;
  sp_domain : int;
  sp_start_ns : int;
  sp_dur_ns : int;
  sp_a0 : int;  (** begin-side [a0], or [-1] when the B event was dropped *)
  sp_a1 : int;
  sp_v : int;
  sp_depth : int;  (** nesting depth within its domain *)
  sp_note : string;
}

val spans : snapshot -> span list
(** Spans reconstructed from matched B/E events, sorted by start time. *)

val kind_begin : int

val kind_end : int

val kind_instant : int

val kind_log : int
