module T = Telemetry
module Timer = Ll_util.Timer

let default_interval_s = 0.25

(* GC gauges, refreshed at every sample so allocation trends join the
   metric stream.  heap_words and major_collections describe the shared
   major heap; the minor-allocation rate only counts the domain calling
   [sample] (per-domain minor heaps), so from the background sampler it
   is a best-effort floor — work domains can publish their own rate
   through the same gauge. *)
let g_gc_major = T.Metric.gauge "gc.major_collections"

let g_gc_heap = T.Metric.gauge "gc.heap_words"

let g_gc_minor_rate = T.Metric.gauge "gc.minor_words_per_s"

let m_samples = T.Metric.counter "live.samples"

let m_subscriber_errors = T.Metric.counter "live.subscriber_errors"

type sample = {
  s_seq : int;
  s_t_ns : int;  (* monotonic, strictly increasing across samples *)
  s_dt_s : float;
  s_snap : T.snapshot;
  s_counters : (string * int * float) list;  (* name, delta, rate/s *)
  s_hists : (string * int * float) list;  (* name, count delta, sum delta *)
  s_gauges : (string * float) list;
  s_dropped_delta : int;
}

(* ------------------------------------------------------------------ *)
(* Delta cursor: the pure sampling engine                              *)
(* ------------------------------------------------------------------ *)

(* A cursor remembers the previous sample's totals; [sample] snapshots,
   diffs against them and advances.  The background sampler drives one
   cursor from its own domain; tests drive cursors directly for
   deterministic delta checks. *)
type cursor = {
  mutable c_seq : int;
  mutable c_t_ns : int;
  mutable c_counters : (string * int) list;
  mutable c_hists : (string * (int * float)) list;
  mutable c_dropped : int;
  mutable c_minor_words : float;
}

let cursor () =
  let snap = T.snapshot () in
  {
    c_seq = 0;
    c_t_ns = T.now_ns ();
    c_counters = snap.T.counters;
    c_hists =
      List.map (fun (n, (h : T.hist)) -> (n, (h.T.h_count, h.T.h_sum))) snap.T.histograms;
    c_dropped = snap.T.dropped_events;
    c_minor_words = (Gc.quick_stat ()).Gc.minor_words;
  }

let sample cur =
  let t_ns = T.now_ns () in
  let dt_s = float_of_int (t_ns - cur.c_t_ns) /. 1e9 in
  let dt_div = if dt_s > 0.0 then dt_s else 1e-9 in
  let g = Gc.quick_stat () in
  T.Metric.set g_gc_major (float_of_int g.Gc.major_collections);
  T.Metric.set g_gc_heap (float_of_int g.Gc.heap_words);
  T.Metric.set g_gc_minor_rate ((g.Gc.minor_words -. cur.c_minor_words) /. dt_div);
  T.Metric.incr m_samples;
  let snap = T.snapshot () in
  let counters =
    List.map
      (fun (name, v) ->
        let prev = match List.assoc_opt name cur.c_counters with Some p -> p | None -> 0 in
        (name, v - prev, float_of_int (v - prev) /. dt_div))
      snap.T.counters
  in
  let hists =
    List.map
      (fun (name, (h : T.hist)) ->
        let pc, ps =
          match List.assoc_opt name cur.c_hists with Some p -> p | None -> (0, 0.0)
        in
        (name, h.T.h_count - pc, h.T.h_sum -. ps))
      snap.T.histograms
  in
  cur.c_seq <- cur.c_seq + 1;
  cur.c_t_ns <- t_ns;
  cur.c_counters <- snap.T.counters;
  cur.c_hists <-
    List.map (fun (n, (h : T.hist)) -> (n, (h.T.h_count, h.T.h_sum))) snap.T.histograms;
  let dropped_delta = snap.T.dropped_events - cur.c_dropped in
  cur.c_dropped <- snap.T.dropped_events;
  cur.c_minor_words <- g.Gc.minor_words;
  {
    s_seq = cur.c_seq;
    s_t_ns = t_ns;
    s_dt_s = dt_s;
    s_snap = snap;
    s_counters = counters;
    s_hists = hists;
    s_gauges = snap.T.gauges;
    s_dropped_delta = dropped_delta;
  }

(* ------------------------------------------------------------------ *)
(* Subscribers                                                         *)
(* ------------------------------------------------------------------ *)

let lock = Mutex.create ()

let subscribers : (int * (sample -> unit)) list ref = ref []

let next_sub_id = ref 0

let subscribe fn =
  Mutex.lock lock;
  let id = !next_sub_id in
  incr next_sub_id;
  subscribers := !subscribers @ [ (id, fn) ];
  Mutex.unlock lock;
  id

let unsubscribe id =
  Mutex.lock lock;
  subscribers := List.filter (fun (i, _) -> i <> id) !subscribers;
  Mutex.unlock lock

let publish s =
  Mutex.lock lock;
  let subs = !subscribers in
  Mutex.unlock lock;
  List.iter
    (fun (_, fn) ->
      try fn s
      with e ->
        T.Metric.incr m_subscriber_errors;
        Printf.eprintf "telemetry: live subscriber raised %s\n%!" (Printexc.to_string e))
    subs

(* ------------------------------------------------------------------ *)
(* Background sampler                                                  *)
(* ------------------------------------------------------------------ *)

let stop_flag = Atomic.make false

let sampler : unit Domain.t option ref = ref None

let current_interval = ref default_interval_s

(* No timed condition wait in the stdlib: sleep in short slices so a
   [stop] is honoured within ~50 ms rather than a full interval. *)
let interruptible_sleep total =
  let slice = 0.05 in
  let rec go left =
    if left > 0.0 && not (Atomic.get stop_flag) then begin
      Unix.sleepf (Float.min slice left);
      go (left -. slice)
    end
  in
  go total

let loop interval_s =
  let cur = cursor () in
  let continue = ref true in
  while !continue do
    interruptible_sleep interval_s;
    if Atomic.get stop_flag then continue := false;
    (* The stopping iteration still publishes: every started sampler
       delivers at least one (final, flush) sample. *)
    publish (sample cur)
  done

let running () =
  Mutex.lock lock;
  let r = !sampler <> None in
  Mutex.unlock lock;
  r

let start ?(interval_s = default_interval_s) () =
  Mutex.lock lock;
  if !sampler = None then begin
    Atomic.set stop_flag false;
    current_interval := interval_s;
    sampler := Some (Domain.spawn (fun () -> loop interval_s))
  end;
  Mutex.unlock lock

let stop () =
  Mutex.lock lock;
  let d = !sampler in
  sampler := None;
  Mutex.unlock lock;
  match d with
  | None -> ()
  | Some d ->
      Atomic.set stop_flag true;
      Domain.join d

let interval_s () = !current_interval

(* ------------------------------------------------------------------ *)
(* Stream sinks                                                        *)
(* ------------------------------------------------------------------ *)

type sink = { sink_write : string -> unit; sink_close : unit -> unit }

let sink_of_channel ?(close = true) oc =
  {
    sink_write =
      (fun line ->
        output_string oc line;
        output_char oc '\n';
        flush oc);
    sink_close = (fun () -> if close then close_out oc else flush oc);
  }

let open_sink spec =
  if spec = "-" then sink_of_channel ~close:false stdout
  else if String.length spec > 5 && String.sub spec 0 5 = "unix:" then begin
    let path = String.sub spec 5 (String.length spec - 5) in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       Unix.close fd;
       raise e);
    sink_of_channel (Unix.out_channel_of_descr fd)
  end
  else sink_of_channel (open_out spec)
