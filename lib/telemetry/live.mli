(** Live sampling over the telemetry substrate.

    {!Telemetry} is post-mortem by itself: one {!Telemetry.snapshot} at
    exit.  This module adds the streaming half — a background sampler on
    its own domain takes periodic snapshots, diffs them against the
    previous sample (counter deltas and rates, histogram deltas, latest
    gauges, ring-drop deltas) and fans the result to subscribers.  It is
    the in-process engine behind the CLI's [--watch] / [--stream] /
    [--prom] modes and the front door a future [logiclockd] daemon
    reuses.

    {b Determinism.}  Sampling is read-only with respect to instrumented
    code: it never blocks a writer and never changes attack behaviour —
    golden DIP sequences are byte-identical with the sampler on or off.
    Snapshots taken while writers are active are best-effort, exactly as
    documented on {!Telemetry.snapshot}.

    {b GC gauges.}  Every sample refreshes [gc.major_collections],
    [gc.heap_words] and [gc.minor_words_per_s].  The first two describe
    the shared major heap; minor words are per-domain in OCaml 5, so the
    rate gauge only covers the sampling domain unless work domains
    publish their own. *)

type sample = {
  s_seq : int;  (** 1-based, strictly increasing per cursor *)
  s_t_ns : int;  (** monotonic clock, strictly increasing *)
  s_dt_s : float;  (** seconds since the previous sample *)
  s_snap : Telemetry.snapshot;  (** the full snapshot behind the deltas *)
  s_counters : (string * int * float) list;  (** name, delta, rate per second *)
  s_hists : (string * int * float) list;  (** name, count delta, sum delta *)
  s_gauges : (string * float) list;  (** latest values (snapshot merge order) *)
  s_dropped_delta : int;  (** ring events lost since the previous sample *)
}

(** {1 Delta cursor}

    The pure sampling engine: a cursor remembers the previous totals and
    [sample] diffs a fresh snapshot against them.  The background
    sampler drives one cursor internally; tests drive their own for
    deterministic delta checks without any timing. *)

type cursor

val cursor : unit -> cursor
(** A new cursor baselined on the current totals: the first {!sample}
    reports deltas relative to now, not to process start. *)

val sample : cursor -> sample
(** Take a snapshot, diff against the cursor and advance it. *)

(** {1 Background sampler}

    A process-wide singleton.  [start] and [stop] are both idempotent;
    [stop] joins the sampler domain after it publishes one final flush
    sample, so even a start/stop pair with no full interval in between
    delivers at least one sample to every subscriber. *)

val default_interval_s : float
(** 0.25 s. *)

val start : ?interval_s:float -> unit -> unit

val stop : unit -> unit

val running : unit -> bool

val interval_s : unit -> float
(** The interval passed to the most recent {!start}. *)

val subscribe : (sample -> unit) -> int
(** Register a subscriber; returns its id for {!unsubscribe}.
    Subscribers run on the sampler domain in registration order; an
    exception is counted ([live.subscriber_errors]), reported on stderr
    and does not stop the sampler. *)

val unsubscribe : int -> unit

(** {1 Stream sinks} *)

type sink = { sink_write : string -> unit; sink_close : unit -> unit }

val open_sink : string -> sink
(** Resolve a stream destination: ["-"] appends lines to stdout (left
    open), ["unix:PATH"] connects a Unix-domain stream socket, anything
    else creates/truncates a file.  Each [sink_write] appends one line
    (adding the newline) and flushes. *)
