(** Regression gate over BENCH_*.json artifacts.

    Compares a fresh emitter run against a committed baseline with
    per-metric noise thresholds, so perf and behaviour regressions
    surface in [dune runtest] instead of drifting silently.  The policy:
    booleans/strings and deterministic counters (DIPs, rounds,
    conflicts) must match exactly; noise-dominated fields (wall times,
    rates, GC volumes, steals, trace volumes — classified by name) pass
    within a ratio threshold or absolute slack; per-iteration trajectory
    arrays are skipped by default; fields or records missing from the
    current run fail, new ones are allowed. *)

type config = {
  tol : float;  (** noisy fields: [max/min <= tol] passes (default 10.0) *)
  abs_tol : float;  (** noisy fields: [|a - b| <= abs_tol] passes (default 64.0) *)
  compare_arrays : bool;  (** compare array lengths too (default false) *)
  noisy : string list;  (** substring patterns marking noisy fields *)
}

val default_config : config

val noisy_field : config -> string -> bool
(** True when a field name matches a noise pattern (or ends in ["_s"]). *)

type outcome = {
  records_compared : int;
  fields_compared : int;
  failures : string list;  (** empty when the gate passes *)
}

val pass : outcome -> bool

val diff :
  ?config:config ->
  baseline:Trace_check.json ->
  current:Trace_check.json ->
  unit ->
  outcome
(** Top-level values are arrays of records (a bare object counts as a
    one-record array); records are matched across files by their
    identity fields ([name]/[kind]/[section]/[workload]/[n]). *)

val diff_strings : ?config:config -> baseline:string -> current:string -> unit -> outcome

val diff_files : ?config:config -> baseline:string -> current:string -> unit -> outcome
(** Unreadable files and parse errors are reported as failures, never
    raised. *)

val summary : outcome -> string
(** One line on success; the failure list otherwise. *)
