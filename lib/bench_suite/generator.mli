(** Seeded random combinational logic.

    Produces layered DAGs of 2-input gates.  Used both to pad structured
    stand-ins to their target gate counts and as a source of arbitrary test
    circuits for property-based testing. *)

val filler :
  Ll_util.Prng.t ->
  Ll_netlist.Builder.t ->
  seeds:Ll_netlist.Builder.signal array ->
  count:int ->
  Ll_netlist.Builder.signal array
(** [filler g b ~seeds ~count] appends roughly [count] random gates whose
    fanins are drawn from [seeds] and previously created filler gates (with
    a locality bias so that depth grows).  Returns the created signals.
    Raises [Invalid_argument] when [seeds] is empty and [count > 0]. *)

val random_reduce :
  Ll_util.Prng.t ->
  Ll_netlist.Builder.t ->
  Ll_netlist.Builder.signal array ->
  Ll_netlist.Builder.signal
(** Pairwise balanced reduction with randomly chosen 2-input gates.  Adds
    [n-1] gates.  Raises [Invalid_argument] on an empty array. *)

val random_circuit :
  ?seed:int ->
  ?name:string ->
  num_inputs:int ->
  num_outputs:int ->
  gates:int ->
  unit ->
  Ll_netlist.Circuit.t
(** A connected random circuit: outputs are tapped from the most recently
    created gates (falling back to inputs for tiny gate counts).
    Deterministic in [seed]. *)

val random_circuits :
  ?pool:Ll_runtime.Pool.t ->
  ?seed:int ->
  ?name:string ->
  count:int ->
  num_inputs:int ->
  num_outputs:int ->
  gates:int ->
  unit ->
  Ll_netlist.Circuit.t array
(** A sweep of [count] circuits of the same shape.  Per-circuit seeds are
    derived from [seed] via {!Ll_util.Prng.split} streams in index order,
    so the family is deterministic whether generated serially or spread
    over [pool]'s domains. *)
