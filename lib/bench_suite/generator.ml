module Builder = Ll_netlist.Builder
module Gate = Ll_netlist.Gate
module Prng = Ll_util.Prng

(* AND/OR-family dominated, like the real ISCAS'85 netlists; XOR-heavy
   random logic would make SAT queries unrealistically hard. *)
let gate_menu =
  [|
    Gate.And; Gate.Nand; Gate.Or; Gate.Nor;
    Gate.And; Gate.Nand; Gate.Or; Gate.Nor;
    Gate.Xor; Gate.Xnor;
  |]

(* Pick a fanin, biased towards recently created signals so the network
   gains depth instead of staying a two-level forest. *)
let pick_fanin g pool pool_len =
  let n = pool_len in
  let r = Prng.float g 1.0 in
  let i =
    if r < 0.5 && n > 8 then n - 1 - Prng.int g (n / 4) (* recent quarter *)
    else Prng.int g n
  in
  pool.(i)

let filler g b ~seeds ~count =
  if count > 0 && Array.length seeds = 0 then invalid_arg "Generator.filler: no seeds";
  if count <= 0 then [||]
  else begin
    let pool = Array.make (Array.length seeds + count) seeds.(0) in
    Array.blit seeds 0 pool 0 (Array.length seeds);
    let pool_len = ref (Array.length seeds) in
    let created = Array.make count seeds.(0) in
    for i = 0 to count - 1 do
      let gate = gate_menu.(Prng.int g (Array.length gate_menu)) in
      let x = pick_fanin g pool !pool_len in
      let y = pick_fanin g pool !pool_len in
      let s =
        (* Occasionally produce an inverter to diversify structure. *)
        if Prng.float g 1.0 < 0.08 then Builder.not_ b x
        else Builder.gate b gate [| x; y |]
      in
      pool.(!pool_len) <- s;
      incr pool_len;
      created.(i) <- s
    done;
    created
  end

let random_reduce g b signals =
  if Array.length signals = 0 then invalid_arg "Generator.random_reduce: empty";
  let rec round signals =
    let n = Array.length signals in
    if n = 1 then signals.(0)
    else begin
      let next = Array.make ((n + 1) / 2) signals.(0) in
      let j = ref 0 in
      let i = ref 0 in
      while !i + 1 < n do
        let gate = gate_menu.(Prng.int g (Array.length gate_menu)) in
        next.(!j) <- Builder.gate b gate [| signals.(!i); signals.(!i + 1) |];
        incr j;
        i := !i + 2
      done;
      if !i < n then begin
        next.(!j) <- signals.(!i);
        incr j
      end;
      round (Array.sub next 0 !j)
    end
  in
  round signals

module Pool = Ll_runtime.Pool

let random_circuit ?(seed = 1) ?(name = "random") ~num_inputs ~num_outputs ~gates () =
  if num_inputs <= 0 || num_outputs <= 0 then
    invalid_arg "Generator.random_circuit: need at least one input and output";
  let g = Prng.create seed in
  let b = Builder.create ~name () in
  let inputs = Array.init num_inputs (fun i -> Builder.input b (Printf.sprintf "x%d" i)) in
  let created = filler g b ~seeds:inputs ~count:gates in
  let candidates = if Array.length created = 0 then inputs else created in
  for o = 0 to num_outputs - 1 do
    (* Prefer tapping distinct late gates; wrap around when outputs exceed
       candidates. *)
    let n = Array.length candidates in
    let idx = if o < n then n - 1 - o else Prng.int g n in
    Builder.output b (Printf.sprintf "y%d" o) candidates.(idx)
  done;
  Builder.finish b

let random_circuits ?pool ?(seed = 1) ?(name = "random") ~count ~num_inputs
    ~num_outputs ~gates () =
  if count < 0 then invalid_arg "Generator.random_circuits: negative count";
  (* Per-circuit seeds come from split streams drawn in index order, so the
     sweep is one deterministic family no matter how (or whether) the
     generation is parallelized. *)
  let root = Prng.create seed in
  let seeds = Array.init count (fun _ -> Int64.to_int (Prng.bits64 (Prng.split root))) in
  let build i s =
    random_circuit ~seed:s
      ~name:(Printf.sprintf "%s_%d" name i)
      ~num_inputs ~num_outputs ~gates ()
  in
  match pool with
  | None -> Array.mapi build seeds
  | Some p ->
      Pool.map_array p (fun _ctx (i, s) -> build i s) (Array.mapi (fun i s -> (i, s)) seeds)
      |> Array.map (function
           | Pool.Done c -> c
           | Pool.Cancelled -> assert false
           | Pool.Failed e -> raise e)
